#include "core/engine.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace allconcur::core {

// Adapter exposing one round's failure knowledge (F_i) to the tracking
// digraphs in rank space. F_i is per round: a notification tagged with
// round r applies to r and later rounds, never to earlier open ones.
class Engine::Knowledge final : public FailureKnowledge {
 public:
  Knowledge(const Engine& e, const RoundState& st) : e_(e), st_(st) {}
  bool is_failed(NodeId rank) const override {
    return st_.failed_rank[rank];
  }
  bool has_pair(NodeId rank_j, NodeId rank_k) const override {
    return st_.fails.count({e_.view_->member(rank_j),
                            e_.view_->member(rank_k)}) > 0;
  }

 private:
  const Engine& e_;
  const RoundState& st_;
};

Engine::Engine(NodeId self, View view, GraphBuilder builder, Hooks hooks,
               Options options, Round start_round)
    : self_(self),
      builder_(std::move(builder)),
      hooks_(std::move(hooks)),
      options_(options),
      rec_(options.recorder),
      base_round_(start_round),
      view_(std::make_shared<const View>(std::move(view))) {
  ALLCONCUR_ASSERT(hooks_.send && hooks_.deliver, "engine hooks required");
  ALLCONCUR_ASSERT(view_->contains(self_), "self must be a view member");
  ALLCONCUR_ASSERT(options_.window >= 1, "window must be at least 1");
  if (fast_path()) {
    ALLCONCUR_ASSERT(view_->has_fast_overlay(),
                     "dual-digraph mode needs a view built with the same "
                     "fast_builder");
    ALLCONCUR_ASSERT(options_.fd_mode == FdMode::kPerfect,
                     "dual-digraph mode requires a perfect failure detector");
  }
  suspected_rank_.assign(view_->size(), false);
  refill_window();
}

Round Engine::max_open_round() const {
  const Round window_max = base_round_ + options_.window - 1;
  // A pending membership change caps the window: no round beyond the
  // epoch close may open under the old view.
  if (epoch_close_ && *epoch_close_ < window_max) return *epoch_close_;
  return window_max;
}

Engine::RoundState* Engine::find_round(Round r) {
  if (r < base_round_ || r >= base_round_ + window_.size()) return nullptr;
  return window_[static_cast<std::size_t>(r - base_round_)].get();
}

void Engine::refill_window() {
  while (base_round_ + window_.size() <= max_open_round()) {
    open_round();
  }
}

void Engine::open_round() {
  const Round r =
      window_.empty() ? base_round_ : window_.back()->round + 1;
  const std::size_t n = view_->size();
  // Failure notifications carry forward (line 12): within an epoch the new
  // round inherits its predecessor's F_i; the first round after a view
  // switch (empty window) seeds from the carried, membership-filtered set.
  const RoundState* prev = window_.empty() ? nullptr : window_.back().get();

  // Failure-free fast path: the common round keeps the same view, so the
  // rank and neighbor lists survive; only a membership change recomputes
  // them. Everything below reuses capacity — assign() refills the flag and
  // slot vectors in place, and the tracking digraphs are reset one by one
  // so their vertex/edge storage persists. A steady-state round transition
  // performs no heap allocation (bench/wire_path measures this).
  if (neighbors_view_ != view_.get()) {
    const auto rank = view_->rank_of(self_);
    ALLCONCUR_ASSERT(rank.has_value(), "self not in view");
    self_rank_ = *rank;
    succs_ = view_->successors_of(self_);
    preds_ = view_->predecessors_of(self_);
    if (fast_path()) {
      u_succs_ = view_->fast_successors_of(self_);
    }
    neighbors_view_ = view_.get();
  }

  std::unique_ptr<RoundState> st;
  if (!pool_.empty()) {
    st = std::move(pool_.back());
    pool_.pop_back();
  } else {
    st = std::make_unique<RoundState>();
  }
  st->round = r;
  st->msgs.assign(n, nullptr);
  st->msg_bytes.assign(n, 0);
  st->have.assign(n, false);
  st->have_count = 0;
  st->own_broadcast = false;
  st->fell_back = false;
  st->fallback_relayed = false;
  st->fallback_attempt = 0;
  st->assisted = false;
  // A round with inherited failure notifications can never complete fast
  // (the failed member's message will not arrive over G_U), so it opens
  // on the reliable path directly; failure-free rounds open FAST and skip
  // the tracking machinery entirely (st->tracking keeps whatever stale
  // pool state it has — guarded by st->fast at every use).
  const std::set<std::pair<NodeId, NodeId>>& inherited =
      prev ? prev->fails : carry_fails_;
  st->fast = fast_path() && inherited.empty();
  st->fails.clear();
  st->failed_rank.assign(n, false);
  st->lost.assign(n, false);
  st->decided = false;
  st->fwd_seen.assign(n, false);
  st->bwd_seen.assign(n, false);
  st->fwd_count = st->bwd_count = 0;
  st->complete = false;
  if (st->fast) {
    st->active_tracking = 0;
  } else {
    init_tracking(*st);
  }
  window_.push_back(std::move(st));
  rec(obs::EventKind::kRoundOpen, r, window_.back()->fast ? 1 : 0,
      window_.size());

  // Carry the inherited failure notifications into the fresh round
  // (Algorithm 1 lines 12-13): re-disseminate each pair under the new
  // round's tag and replay it against the new tracking digraphs, one at a
  // time exactly like the classic per-round transition, so servers that
  // failed in an earlier round resolve here too (and joiners hear about
  // them).
  if (!inherited.empty()) {
    RoundState& ref = *window_.back();
    for (const auto& [j, k] : inherited) {
      const auto rank_j = view_->rank_of(j);
      ALLCONCUR_ASSERT(rank_j.has_value(), "carried failure left the view");
      ref.fails.insert({j, k});
      ref.failed_rank[*rank_j] = true;
      stats_.fail_sent += send_to_successors(Message::fail(r, j, k));
      const auto rank_k = view_->rank_of(k);
      apply_failure_to_round(
          ref, *rank_j, rank_k ? static_cast<NodeId>(*rank_k) : kInvalidNode);
    }
  }
}

void Engine::init_tracking(RoundState& st) {
  const std::size_t n = view_->size();
  if (st.tracking.size() > n) {
    // View shrank: park the spare digraphs (with their capacity) on the
    // free-list instead of destroying them.
    std::move(st.tracking.begin() + static_cast<std::ptrdiff_t>(n),
              st.tracking.end(), std::back_inserter(tracking_spares_));
    st.tracking.resize(n);
  }
  while (st.tracking.size() < n) {
    if (!tracking_spares_.empty()) {
      st.tracking.push_back(std::move(tracking_spares_.back()));
      tracking_spares_.pop_back();
    } else {
      st.tracking.emplace_back();
    }
  }
  st.active_tracking = 0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    // Messages already held (over either overlay) need no tracking; on a
    // fallback transition mid-round that is everything the fast phase
    // collected. At round open have[] is all-false and this reduces to
    // the classic "track everyone but self".
    if (rank == self_rank_ || st.have[rank]) {
      st.tracking[rank].reset_empty();
    } else {
      st.tracking[rank].reset(static_cast<NodeId>(rank));
      ++st.active_tracking;
      ++stats_.tracking_resets;
    }
  }
}

void Engine::recycle(std::unique_ptr<RoundState> st) {
  // Drop the payload references now — a parked state must not pin message
  // buffers until its next reuse. Capacity is retained.
  st->msgs.assign(st->msgs.size(), nullptr);
  pool_.push_back(std::move(st));
}

void Engine::submit(Request request) {
  pending_request_bytes_ += kRequestHeaderBytes + request.data.size();
  pending_.push_back(std::move(request));
}

void Engine::submit_opaque(std::size_t bytes) {
  pending_opaque_bytes_ += bytes;
}

std::uint64_t Engine::pending_bytes() const {
  return pending_request_bytes_ + pending_opaque_bytes_;
}

bool Engine::has_broadcast() const {
  return !window_.empty() && window_.front()->own_broadcast;
}

std::optional<Round> Engine::next_broadcast_round() const {
  for (const auto& st : window_) {
    if (!st->own_broadcast) return st->round;
  }
  return std::nullopt;
}

std::size_t Engine::active_tracking() const {
  ALLCONCUR_ASSERT(!window_.empty(), "no open round");
  return window_.front()->active_tracking;
}

const TrackingDigraph& Engine::tracking_of(std::size_t rank) const {
  ALLCONCUR_ASSERT(!window_.empty(), "no open round");
  return window_.front()->tracking[rank];
}

void Engine::broadcast_now() {
  if (departed_) return;
  RoundState* target = nullptr;
  for (auto& st : window_) {
    if (!st->own_broadcast) {
      target = st.get();
      break;
    }
  }
  // The in-progress round broadcasts even empty (round progress); later
  // window rounds are opened speculatively only for actual payload, so
  // idle nudging cannot spin the pipeline on empty rounds. When every
  // open round already carries our message, submissions keep pending
  // (see pending_bytes() — the backpressure signal).
  if (target != nullptr &&
      (target->round == base_round_ || !pending_.empty() ||
       pending_opaque_bytes_ > 0)) {
    do_broadcast(*target);
  }
  deliver_ready();
}

void Engine::do_broadcast(RoundState& st) {
  ALLCONCUR_ASSERT(!st.own_broadcast, "already broadcast this round");
  Message msg;
  if (pending_opaque_bytes_ > 0 && pending_.empty()) {
    msg = Message::bcast_sized(st.round, self_, pending_opaque_bytes_);
  } else {
    msg = Message::bcast(st.round, self_, pack_batch(pending_));
    // Size-only load can ride along with structured requests: the declared
    // size grows, the fabric charges for the bytes, nothing is
    // materialized. (Simulation-only: the TCP encoder requires the payload
    // to match the declared size.)
    msg.payload_bytes += pending_opaque_bytes_;
    pending_.clear();
  }
  pending_opaque_bytes_ = 0;
  pending_request_bytes_ = 0;
  if (trace_sampled_round(st.round)) {
    // Origin stamp: sampled flag + hop 0 in the header's trace byte, the
    // cumulative one-way estimate (detector word) starts at zero.
    msg.trace = Message::trace_origin_context();
    msg.detector = 0;
    options_.tracer->record(obs::SpanKind::kOrigin, st.round, self_, self_,
                            0, 0);
  }
  st.own_broadcast = true;
  st.msgs[self_rank_] = msg.payload;
  st.msg_bytes[self_rank_] = msg.payload_bytes;
  st.have[self_rank_] = true;
  ++st.have_count;
  if (st.fast) {
    // Fast round: the broadcast travels the unreliable overlay only.
    msg.type = MsgType::kUBcast;
    stats_.ubcast_sent += fan_out(u_succs_, msg, kInvalidNode);
  } else {
    stats_.bcast_sent += send_to_successors(msg);
  }
  rec(obs::EventKind::kBcastSent, st.round, msg.payload_bytes,
      st.fast ? 1 : 0);
  check_termination(st);
}

bool Engine::front_round_active() const {
  return front_round_progress() > 0;
}

std::size_t Engine::front_round_progress() const {
  if (window_.empty()) return 0;
  // have_count counts the own broadcast too (do_broadcast sets the bit),
  // so it is the round's single monotone activity counter.
  return window_.front()->have_count;
}

void Engine::ensure_broadcast_up_to(Round r) {
  for (auto& st : window_) {
    if (st->round > r) break;
    if (!st->own_broadcast) do_broadcast(*st);
  }
}

std::size_t Engine::fan_out(const std::vector<NodeId>& dsts,
                            const Message& msg, NodeId skip) {
  std::size_t sent = 0;
  FrameRef frame;
  for (NodeId dst : dsts) {
    if (dst == skip) continue;
    if (!frame) {
      // Built once per message, on the first live destination; every
      // further destination shares the same bytes by reference.
      frame = Frame::make(msg);
      ++stats_.frames_encoded;
    }
    stats_.bytes_sent += frame->wire_size();
    hooks_.send(dst, frame);
    ++sent;
  }
  return sent;
}

std::size_t Engine::send_to_successors(const Message& msg, NodeId skip) {
  return fan_out(succs_, msg, skip);
}

std::size_t Engine::send_to_predecessors(const Message& msg, NodeId skip) {
  return fan_out(preds_, msg, skip);
}

void Engine::on_message(NodeId from, const Message& msg) {
  if (departed_) return;
  if (msg.type == MsgType::kHeartbeat) return;  // FD traffic, not ours

  if (msg.type == MsgType::kFail) {
    // A ⟨FAIL⟩ tagged with round r is valid for r and every later round
    // (suspicion persists forward): a stale tag clamps to the current
    // window instead of being dropped — no information is lost — while a
    // tag beyond the window parks like any other future traffic.
    if (msg.round > base_round_ + window_.size() - 1) {
      park_future(from, msg);
      return;
    }
    handle_fail(msg);
    deliver_ready();
    return;
  }

  if (msg.round < base_round_) {
    if (msg.type == MsgType::kFallback) {
      // A laggard is re-executing a round we already delivered: the
      // trigger must keep flooding and the laggard may need our retained
      // message set to terminate.
      handle_fallback_stale(from, msg);
      deliver_ready();
      return;
    }
    ++stats_.dropped_stale;
    rec(obs::EventKind::kDroppedMsg, msg.round,
        static_cast<std::uint64_t>(obs::DropReason::kStale), from);
    return;
  }
  RoundState* st = find_round(msg.round);
  if (st == nullptr) {
    park_future(from, msg);
    return;
  }

  switch (msg.type) {
    case MsgType::kBroadcast:
    case MsgType::kUBcast:
      handle_bcast(from, msg, *st);
      break;
    case MsgType::kFallback:
      handle_fallback(from, msg, *st);
      break;
    case MsgType::kFwd:
    case MsgType::kBwd:
      handle_fwdbwd(from, msg, *st);
      break;
    case MsgType::kFail:
    case MsgType::kHeartbeat:
      break;
  }
  deliver_ready();
}

void Engine::park_future(NodeId from, const Message& msg) {
  // Beyond the window. A live peer can legitimately be up to W rounds
  // ahead of our delivered frontier and broadcast W more, so anything up
  // to base+2W-1 is parked for replay once the window advances (replays
  // that park again are not recounted). Farther-future traffic means we
  // were evicted — drop it, the harness decides on rejoin.
  const bool parkable = msg.round < base_round_ + 2 * options_.window;
  if (parkable) {
    // A duplicated frame (chaos duplication, link retries) must neither
    // re-count dropped_ahead nor park twice — a double park would replay
    // the message twice after the window advances and grow future_
    // unboundedly under sustained duplication.
    for (const auto& [pfrom, pmsg] : future_) {
      if (pfrom == from && pmsg.round == msg.round &&
          pmsg.type == msg.type && pmsg.origin == msg.origin &&
          pmsg.detector == msg.detector) {
        ++stats_.parked_duplicates;
        return;
      }
    }
  }
  if (!replaying_ && msg.round >= base_round_ + options_.window) {
    ++stats_.dropped_ahead;
    rec(obs::EventKind::kDroppedAhead, msg.round, from,
        parkable ? 1 : 0);
  }
  if (parkable) {
    rec(obs::EventKind::kParked, msg.round, from,
        static_cast<std::uint64_t>(msg.type));
    future_.emplace_back(from, msg);
  }
}

void Engine::replay_parked() {
  if (future_.empty()) return;
  std::deque<std::pair<NodeId, Message>> parked;
  parked.swap(future_);
  const bool was_replaying = replaying_;
  replaying_ = true;
  for (const auto& [from, msg] : parked) {
    on_message(from, msg);
  }
  replaying_ = was_replaying;
}

void Engine::handle_bcast(NodeId from, const Message& msg, RoundState& st) {
  const bool via_fast = msg.type == MsgType::kUBcast;
  ++(via_fast ? stats_.ubcast_received : stats_.bcast_received);
  const auto from_rank = view_->rank_of(from);
  if (from_rank && suspected_rank_[*from_rank]) {
    // §3.3.2: once a predecessor is suspected, everything but failure
    // notifications from it must be ignored, or the FAIL-implies-relayed
    // inference of the tracking digraphs breaks.
    ++stats_.dropped_suspected;
    rec(obs::EventKind::kDroppedMsg, msg.round,
        static_cast<std::uint64_t>(obs::DropReason::kSuspectedOrigin), from);
    return;
  }
  const auto origin_rank = view_->rank_of(msg.origin);
  if (!origin_rank) {
    ++stats_.dropped_foreign;
    rec(obs::EventKind::kDroppedMsg, msg.round,
        static_cast<std::uint64_t>(obs::DropReason::kForeignEpoch), from);
    return;
  }

  // A reliable ⟨BCAST⟩ reaching a round we still run fast means a peer
  // fell back; its ⟨FALLBACK⟩ precedes it on every G_R link, so this is
  // normally handled already — belt-and-braces for exotic reorderings
  // (e.g. traffic replayed out of a park), flip before accepting.
  if (!via_fast && st.fast && !st.complete) enter_fallback(st);

  // Algorithm 1 line 15: A-broadcast our own message at the latest upon
  // receiving someone else's — in every round up to the message's (our
  // broadcasts stay in round order).
  ensure_broadcast_up_to(st.round);

  if (st.have[*origin_rank]) return;  // duplicate: already relayed it

  if (!st.fast && (st.lost[*origin_rank] || st.decided)) {
    // ⋄P only (cannot happen with an accurate FD, see tests): the message
    // set was already fixed without m_origin — adding it now would break
    // the FWD/BWD set inferences. Count and drop.
    ++stats_.dropped_lost;
    rec(obs::EventKind::kDroppedMsg, msg.round,
        static_cast<std::uint64_t>(obs::DropReason::kLostRace), from);
    return;
  }

  st.have[*origin_rank] = true;
  st.msgs[*origin_rank] = msg.payload;
  st.msg_bytes[*origin_rank] = msg.payload_bytes;
  ++st.have_count;
  rec(obs::EventKind::kMsgRecv, st.round, *origin_rank, via_fast ? 1 : 0);

  // Line 17-18: relay to our successors along the round's current overlay
  // (skipping the link it came from — that peer evidently has it; only
  // valid when the relay stays on the overlay the message arrived by).
  // Counts actual sends: the skipped inbound link does not inflate the
  // counters.
  const bool traced = options_.tracer != nullptr && msg.trace_sampled();
  if (st.fast) {
    if (traced) {
      // Sampled relay: the copy carries hop+1 and the grown cumulative
      // estimate (the context mutates per relay, so the shared frame of
      // this fan-out is re-encoded from the copy).
      Message out = msg;
      trace_relay(out, from);
      stats_.ubcast_sent +=
          fan_out(u_succs_, out, via_fast ? from : kInvalidNode);
    } else {
      stats_.ubcast_sent +=
          fan_out(u_succs_, msg, via_fast ? from : kInvalidNode);
    }
  } else {
    if (via_fast || traced) {
      // Late G_U traffic after the fallback transition: convert and
      // relay reliably. Sampled relays join this copying path for the
      // per-hop context mutation.
      Message out = msg;
      out.type = MsgType::kBroadcast;
      if (traced) trace_relay(out, from);
      stats_.bcast_sent +=
          send_to_successors(out, via_fast ? kInvalidNode : from);
    } else {
      stats_.bcast_sent += send_to_successors(msg, from);
    }
    // Line 19: m_origin is here, stop tracking it.
    if (!st.tracking[*origin_rank].empty()) {
      st.tracking[*origin_rank].clear();
      ALLCONCUR_ASSERT(st.active_tracking > 0, "tracking count underflow");
      --st.active_tracking;
    }
  }
  check_termination(st);
}

void Engine::rebroadcast_reliable(Round round, NodeId origin_global,
                                  const Payload& payload,
                                  std::uint64_t bytes) {
  Message m;
  m.type = MsgType::kBroadcast;
  m.round = round;
  m.origin = origin_global;
  m.payload = payload;
  m.payload_bytes = bytes;
  stats_.bcast_sent += send_to_successors(m);
}

void Engine::assist_fallback(RoundState& st) {
  if (st.assisted) return;
  st.assisted = true;
  rec(obs::EventKind::kFallbackAssist, st.round, st.have_count);
  // A fast round completes only with the full view's message set, so we
  // hold every message — re-relaying them over G_R lets every fallen-back
  // peer terminate by receipt, with the identical (full) set. Must happen
  // before any round-tagged ⟨FAIL⟩ leaves this server (per-link FIFO).
  for (std::size_t rank = 0; rank < view_->size(); ++rank) {
    rebroadcast_reliable(st.round, view_->member(rank), st.msgs[rank],
                         st.msg_bytes[rank]);
  }
}

void Engine::enter_fallback(RoundState& st) {
  if (!st.fast) return;  // already on the tracked path
  if (st.complete) {
    // Completion stands: the fast set is the full view, the only set a
    // fast round can decide, and the assist guarantees the fallback
    // re-execution converges to it. Rounds > r that fast-completed out
    // of order are likewise untouched — a fallback at r does not stall
    // the pipeline.
    assist_fallback(st);
    return;
  }
  st.fast = false;
  st.fell_back = true;
  rec(obs::EventKind::kFallbackEnter, st.round, st.have_count);
  if (trace_sampled_round(st.round)) {
    // The fast -> tracked handoff is a causal edge of every sampled
    // broadcast in this round: annotate it so the merged DAG shows why
    // the propagation re-entered G_R (hop field = messages held).
    options_.tracer->record(
        obs::SpanKind::kFallback, st.round, self_, self_,
        static_cast<std::uint8_t>(
            st.have_count > Message::kTraceHopMask ? Message::kTraceHopMask
                                                   : st.have_count),
        static_cast<std::uint32_t>(st.fallback_attempt));
  }

  // Re-execute reliably: our own broadcast must reach G_R. If it already
  // went out (over G_U), re-issue it as a ⟨BCAST⟩; if we have not
  // broadcast this round yet, the eventual do_broadcast sends a ⟨BCAST⟩
  // anyway now that the mode flipped — forcing an empty broadcast here
  // would change what the round agrees on vs the classic engine.
  if (st.own_broadcast) {
    rebroadcast_reliable(st.round, self_, st.msgs[self_rank_],
                         st.msg_bytes[self_rank_]);
  }
  // Relay everything the fast phase collected over G_R — strictly before
  // any round-r ⟨FAIL⟩ is emitted below, so on every outgoing link a
  // held message precedes the failure evidence about it (the FIFO
  // discipline that keeps tracking sound across the two overlays).
  for (std::size_t rank = 0; rank < view_->size(); ++rank) {
    if (rank == self_rank_ || !st.have[rank]) continue;
    rebroadcast_reliable(st.round, view_->member(rank), st.msgs[rank],
                         st.msg_bytes[rank]);
  }

  // Instantiate the tracking digraphs for whatever is still missing, then
  // replay the failure pairs the fast phase recorded (and disseminate
  // them under this round's tag — fast rounds record but do not apply).
  init_tracking(st);
  if (!st.fails.empty()) {
    const auto pairs = st.fails;  // apply mutates tracking, not fails
    for (const auto& [j, k] : pairs) {
      const auto rank_j = view_->rank_of(j);
      if (!rank_j) continue;
      stats_.fail_sent +=
          send_to_successors(Message::fail(st.round, j, k));
      const auto rank_k = view_->rank_of(k);
      apply_failure_to_round(
          st, *rank_j, rank_k ? static_cast<NodeId>(*rank_k) : kInvalidNode);
    }
  }
  check_termination(st);
}

void Engine::initiate_fallback(RoundState& st) {
  if (!st.fast || st.complete || st.fallback_relayed) return;
  st.fallback_relayed = true;
  ++stats_.fallbacks_initiated;
  rec(obs::EventKind::kFallbackInit, st.round, st.fallback_attempt);
  stats_.fallback_sent +=
      send_to_successors(Message::fallback(st.round, self_));
  enter_fallback(st);
}

void Engine::reflood_fallback(RoundState& st) {
  // Re-issue a stuck tracked round's transition traffic — everything we
  // hold, then the failure evidence, in the same held-messages-before-
  // FAILs link order as the original transition. Receivers dedup all of
  // it, so a spurious re-flood costs bandwidth only.
  for (std::size_t rank = 0; rank < view_->size(); ++rank) {
    if (!st.have[rank]) continue;
    rebroadcast_reliable(st.round, view_->member(rank), st.msgs[rank],
                         st.msg_bytes[rank]);
  }
  for (const auto& [j, k] : st.fails) {
    stats_.fail_sent += send_to_successors(Message::fail(st.round, j, k));
  }
}

void Engine::handle_fallback(NodeId from, const Message& msg,
                             RoundState& st) {
  ++stats_.fallback_received;
  rec(obs::EventKind::kFallbackRecv, msg.round, msg.detector, from);
  if (st.fast && trace_sampled_round(msg.round)) {
    // Explicit DAG edge: the peer's trigger is what pushes this node's
    // sampled round off the fast path (peer = the trigger's initiator).
    options_.tracer->record(obs::SpanKind::kFallback, msg.round, self_,
                            msg.origin, 0, msg.detector);
  }
  const std::uint32_t attempt = msg.detector;
  if (st.fallback_relayed && attempt <= st.fallback_attempt) {
    return;  // this trigger wave was already relayed and acted on
  }
  const bool refire = st.fallback_relayed;
  st.fallback_relayed = true;
  st.fallback_attempt = std::max(st.fallback_attempt, attempt);
  // R-broadcast the trigger onward over G_R before any of the fallback's
  // own traffic, so every ⟨BCAST⟩/⟨FAIL⟩ we emit below finds its receiver
  // already transitioned.
  stats_.fallback_sent += send_to_successors(msg, from);
  if (refire) {
    // A higher-attempt trigger means someone is still stuck: the earlier
    // wave's traffic was lost somewhere, so contribute ours again.
    if (st.fast && st.complete) {
      st.assisted = false;  // re-arm the one-shot
      assist_fallback(st);
    } else if (!st.fast) {
      reflood_fallback(st);
    }
    return;
  }
  if (st.fast) {
    enter_fallback(st);
  } else {
    // The round is already on the tracked path (it opened reliable from
    // inherited failure notifications, or transitioned earlier): the
    // trigger is a stuck peer asking for recovery — contribute what we
    // hold.
    reflood_fallback(st);
  }
}

void Engine::handle_fallback_stale(NodeId from, const Message& msg) {
  ++stats_.fallback_received;
  for (auto& retained : retained_) {
    if (retained.round != msg.round) continue;
    // Per-attempt dedup, not one-shot: a re-fired trigger (higher
    // attempt) means the laggard is still stuck — the earlier assist was
    // lost — so it must be re-relayed and re-assisted or the laggard
    // stalls forever (and, per the retention bound, caps everyone else).
    if (static_cast<std::int64_t>(msg.detector) <= retained.assisted_attempt)
      return;
    retained.assisted_attempt = msg.detector;
    stats_.fallback_sent += send_to_successors(msg, from);
    // Assist from retention: the laggard (and anything between us) may
    // need messages only we still hold. A retained fast round carries the
    // full set; a retained fallback round carries the decided subset —
    // either way the laggard's re-execution converges to the same set
    // (missing messages resolve through the same ⟨FAIL⟩ evidence that
    // resolved them here).
    for (const Delivery& d : retained.deliveries) {
      rebroadcast_reliable(retained.round, d.origin, d.payload, d.bytes);
    }
    // Then the failure evidence (after the messages, per the FIFO
    // discipline): the laggard's tracked re-execution may be waiting on
    // a lost ⟨FAIL⟩, not a lost message.
    for (const auto& [j, k] : retained.fails) {
      stats_.fail_sent +=
          send_to_successors(Message::fail(retained.round, j, k));
    }
    return;
  }
  // Beyond the retention horizon: can only mean the sender was evicted or
  // partitioned past recovery — count and drop.
  ++stats_.dropped_stale;
}

void Engine::retain_delivered(const RoundState& st,
                              const RoundResult& result) {
  if (!fast_path()) return;
  RetainedRound entry;
  if (retained_.size() >= options_.window) {
    // Ring: recycle the oldest entry's vector capacity.
    entry = std::move(retained_.front());
    retained_.pop_front();
    entry.deliveries.clear();
    entry.fails.clear();
  }
  entry.round = result.round;
  entry.assisted_attempt = -1;
  entry.deliveries.insert(entry.deliveries.end(), result.deliveries.begin(),
                          result.deliveries.end());
  entry.fails.insert(entry.fails.end(), st.fails.begin(), st.fails.end());
  retained_.push_back(std::move(entry));
}

void Engine::on_round_timeout(Round r) {
  if (departed_ || !fast_path()) return;
  RoundState* st = find_round(r);
  if (st == nullptr) return;
  // Only an armed round falls back: an idle round (nothing broadcast,
  // nothing received) is merely quiet, and timing it out would make an
  // idle cluster spin fallback rounds forever.
  if (!st->own_broadcast && st->have_count == 0) return;
  if (st->fast) {
    initiate_fallback(*st);
  } else if (!st->complete) {
    // Watchdog fire on a stuck tracked round — one that fell back
    // earlier, or one that opened reliable outright (inherited failure
    // notifications) and lost traffic: (re-)flood the trigger and our
    // contribution. The bumped attempt makes the trigger penetrate the
    // receivers' per-round dedup, so peers re-relay it and contribute
    // their held messages / evidence / retention assists again.
    ++st->fallback_attempt;
    st->fallback_relayed = true;
    rec(obs::EventKind::kFallbackInit, st->round, st->fallback_attempt);
    stats_.fallback_sent += send_to_successors(
        Message::fallback(st->round, self_, st->fallback_attempt));
    reflood_fallback(*st);
  }
  deliver_ready();
}

void Engine::handle_fail(const Message& msg) {
  ++stats_.fail_received;
  learn_failure(msg.origin, msg.detector, msg.round, /*disseminate=*/true);
}

void Engine::on_suspect(NodeId suspect) {
  if (departed_) return;
  if (!view_->contains(suspect)) return;  // not (or no longer) a member
  // A suspicion raised now covers every currently open round.
  rec(obs::EventKind::kSuspect, base_round_, suspect);
  learn_failure(suspect, self_, base_round_, /*disseminate=*/true);
  deliver_ready();
}

void Engine::learn_failure(NodeId global_j, NodeId global_k, Round from_round,
                           bool disseminate) {
  const auto rank_j = view_->rank_of(global_j);
  if (!rank_j) {
    ++stats_.dropped_foreign;
    return;
  }
  if (global_k == self_) suspected_rank_[*rank_j] = true;

  // The detector may have left the membership between rounds; its
  // non-receipt information is then moot (it is not a successor in the
  // current overlay), but "p_j failed" still matters.
  const auto rank_k = view_->rank_of(global_k);
  const NodeId k_or_sentinel =
      rank_k ? static_cast<NodeId>(*rank_k) : kInvalidNode;

  for (auto& st : window_) {
    if (st->round < from_round) continue;  // never applies backward
    // Dual-digraph mode: failure evidence about a fast round forces the
    // transition first — an incomplete fast round re-executes reliably, a
    // complete one re-relays its (full) set. Both happen before the pair
    // is disseminated below, keeping every held message ahead of its
    // failure evidence on each outgoing G_R link.
    if (st->fast) {
      if (st->complete) {
        assist_fallback(*st);
      } else {
        initiate_fallback(*st);
      }
    }
    if (!st->fails.insert({global_j, global_k}).second) continue;  // dup
    st->failed_rank[*rank_j] = true;
    rec(obs::EventKind::kFailureLearned, st->round, global_j, global_k);
    if (disseminate) {
      // Line 22: R-broadcast the notification onward, tagged with each
      // round that learned it (every round needs its own failure stream;
      // fail_sent counts actual sends, not the nominal out-degree).
      stats_.fail_sent +=
          send_to_successors(Message::fail(st->round, global_j, global_k));
    }
    apply_failure_to_round(*st, *rank_j, k_or_sentinel);
  }
}

void Engine::apply_failure_to_round(RoundState& st, std::size_t rank_j,
                                    NodeId k_rank_or_sentinel) {
  // A round still on the fast path has no tracking to update (a complete
  // fast round records the pair for carry-forward only; an incomplete one
  // is transitioned by the caller before this runs).
  if (st.fast) return;
  // Lines 24-41: update every tracking digraph that contains p_j. The
  // digraphs run over the monitor overlay: in dual mode a message may
  // have been relayed along either G_U or G_R, so "whom could m_j have
  // reached" must chase the union's edges.
  const Knowledge fk(*this, st);
  for (std::size_t r = 0; r < st.tracking.size(); ++r) {
    if (st.tracking[r].empty()) continue;
    if (st.tracking[r].on_failure(static_cast<NodeId>(rank_j),
                                  k_rank_or_sentinel,
                                  view_->monitor_overlay(), fk)) {
      ALLCONCUR_ASSERT(st.active_tracking > 0, "tracking count underflow");
      --st.active_tracking;
      st.lost[r] = true;  // pruned to empty: m_r is lost, not received
    }
  }
  check_termination(st);
}

void Engine::handle_fwdbwd(NodeId from, const Message& msg, RoundState& st) {
  ++stats_.fwd_bwd_received;
  if (options_.fd_mode != FdMode::kEventuallyPerfect) return;
  const auto from_rank = view_->rank_of(from);
  if (from_rank && suspected_rank_[*from_rank]) {
    ++stats_.dropped_suspected;
    return;
  }
  const auto origin_rank = view_->rank_of(msg.origin);
  if (!origin_rank) {
    ++stats_.dropped_foreign;
    return;
  }
  if (msg.type == MsgType::kFwd) {
    if (st.fwd_seen[*origin_rank]) return;
    st.fwd_seen[*origin_rank] = true;
    if (msg.origin != self_) ++st.fwd_count;
    send_to_successors(msg, from);
  } else {
    if (st.bwd_seen[*origin_rank]) return;
    st.bwd_seen[*origin_rank] = true;
    if (msg.origin != self_) ++st.bwd_count;
    // ⟨BWD⟩ travels on the transpose of G.
    send_to_predecessors(msg, from);
  }
  ++stats_.fwd_bwd_sent;
  check_termination(st);
}

void Engine::check_termination(RoundState& st) {
  if (departed_ || st.complete) return;
  if (!st.own_broadcast) return;
  if (st.fast) {
    // Fast-path early termination: all n messages arrived over G_U. No
    // tracking was ever consulted; the decided set is the full view by
    // construction, so it is trivially identical at every completer.
    if (st.have_count == view_->size()) {
      st.complete = true;
      rec(obs::EventKind::kFastComplete, st.round, st.have_count);
    }
    return;
  }
  if (st.active_tracking != 0) return;

  if (options_.fd_mode == FdMode::kEventuallyPerfect) {
    if (!st.decided) {
      // §3.3.2: the message set M_i is decided; announce it forward along
      // G and backward along G's transpose (Kosaraju-style probes).
      st.decided = true;
      st.fwd_seen[self_rank_] = true;
      st.bwd_seen[self_rank_] = true;
      send_to_successors(Message::fwd(st.round, self_));
      send_to_predecessors(Message::bwd(st.round, self_));
      stats_.fwd_bwd_sent += 2;
    }
    // Deliver only inside a surviving partition: ⌊n/2⌋ distinct FWD and
    // BWD origins besides ourselves make a strict majority with us.
    const std::size_t needed = view_->size() / 2;
    if (st.fwd_count < needed || st.bwd_count < needed) return;
  }
  // Completion is out-of-order; A-delivery is not. The round is marked
  // done here and delivered by deliver_ready() once every earlier round
  // delivered.
  st.complete = true;
  rec(obs::EventKind::kComplete, st.round, st.have_count,
      st.fell_back ? 1 : 0);
}

void Engine::deliver_ready() {
  if (delivering_) return;  // folds into the outer loop
  delivering_ = true;
  while (!departed_ && !window_.empty() && window_.front()->complete) {
    deliver_front();
  }
  delivering_ = false;
}

void Engine::deliver_front() {
  RoundState& st = *window_.front();

  // --- Assemble the result (deliveries in deterministic id order). ---
  RoundResult result;
  result.round = st.round;
  result.view_size = view_->size();
  bool change_here = false;
  const auto track_unique = [&change_here](std::vector<NodeId>& list,
                                           NodeId id) {
    if (std::find(list.begin(), list.end(), id) == list.end()) {
      list.push_back(id);
      change_here = true;
    }
  };
  // One scan callback for the whole round, not one per delivery.
  const std::function<void(Request::Kind, NodeId)> on_control =
      [&](Request::Kind kind, NodeId subject) {
        if (kind == Request::Kind::kJoin && !view_->contains(subject)) {
          track_unique(epoch_joined_, subject);
        } else if (kind == Request::Kind::kLeave &&
                   view_->contains(subject)) {
          track_unique(epoch_leaves_, subject);
        }
      };
  for (std::size_t r = 0; r < view_->size(); ++r) {
    if (!st.have[r]) {
      // Absent: decided failed. During a draining window the server stays
      // a member for the remaining old-view rounds, so only the first
      // deciding round accumulates it (reported at the epoch close).
      track_unique(epoch_absent_, view_->member(r));
      continue;
    }
    Delivery d;
    d.origin = view_->member(r);
    d.payload = st.msgs[r];
    d.bytes = st.msg_bytes[r];
    result.deliveries.push_back(d);
    // Membership control requests ride in ordinary batches; scanned
    // without materializing the batch (no per-request data copies).
    if (d.payload) scan_membership(d.payload, on_control);
  }
  if (change_here && !epoch_close_) {
    // First membership change of this epoch: the view switches after the
    // window drained. No server can have opened round R+W under the old
    // view (opening it requires having delivered R), so R+W-1 closes the
    // epoch deterministically everywhere. W = 1 reduces to the classic
    // next-round switch.
    epoch_close_ = st.round + options_.window - 1;
  }
  ++stats_.rounds_completed;
  rec(obs::EventKind::kDelivered, st.round, result.deliveries.size(),
      st.fast ? 1 : 0);
  if (fast_path()) {
    // Counted by how the round actually delivered: rounds that opened
    // reliable outright (inherited failure notifications) are tracked
    // rounds too, not fast ones.
    ++(st.fast ? stats_.fast_rounds : stats_.fallback_rounds);
    // Keep the delivered set reachable for late ⟨FALLBACK⟩ assists.
    retain_delivered(st, result);
  }

  // --- Transition (Algorithm 1 lines 9-13, windowed). ---
  const bool closing = epoch_close_ && *epoch_close_ == st.round;
  if (closing) {
    std::sort(epoch_absent_.begin(), epoch_absent_.end());
    std::sort(epoch_joined_.begin(), epoch_joined_.end());
    result.removed = epoch_absent_;
    result.joined = epoch_joined_;

    std::vector<NodeId> removed_all = epoch_absent_;
    removed_all.insert(removed_all.end(), epoch_leaves_.begin(),
                       epoch_leaves_.end());
    std::sort(removed_all.begin(), removed_all.end());
    removed_all.erase(std::unique(removed_all.begin(), removed_all.end()),
                      removed_all.end());

    if (std::find(removed_all.begin(), removed_all.end(), self_) !=
        removed_all.end()) {
      // Departing: freeze at this round (no transition, no new rounds).
      departed_ = true;
      hooks_.deliver(result);
      return;
    }

    auto next_view = std::make_shared<const View>(view_->next(
        removed_all, result.joined, builder_, options_.fast_builder));

    // Carry failure notifications of servers that remain members
    // (line 12); open_round() seeds the new epoch's first round from
    // carry_fails_ and re-disseminates them under its tag.
    carry_fails_.clear();
    for (const auto& [j, k] : st.fails) {
      if (next_view->contains(j)) carry_fails_.insert({j, k});
    }
    view_ = std::move(next_view);
    suspected_rank_.assign(view_->size(), false);
    for (const auto& [j, k] : carry_fails_) {
      if (k == self_) {
        const auto rank_j = view_->rank_of(j);
        ALLCONCUR_ASSERT(rank_j.has_value(), "carried failure left the view");
        suspected_rank_[*rank_j] = true;
      }
    }
    epoch_absent_.clear();
    epoch_leaves_.clear();
    epoch_joined_.clear();
    epoch_close_.reset();
  } else {
    // Carry on every transition, not only at epoch closes (classic line
    // 12): with W = 1 the window is empty the instant the front pops, so
    // the next round seeds from carry_fails_ — without this, a pair
    // learned during a round whose origin still delivered (crash after a
    // complete broadcast) would vanish and the dead server's tracking
    // could never resolve again.
    carry_fails_ = st.fails;
  }

  std::unique_ptr<RoundState> done = std::move(window_.front());
  window_.pop_front();
  ++base_round_;
  recycle(std::move(done));
  refill_window();

  // Report R before replaying any parked future traffic so deliveries
  // stay in round order; the hook may submit/broadcast for the new
  // window.
  hooks_.deliver(result);
  replay_parked();
}

}  // namespace allconcur::core
