#include "core/engine.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace allconcur::core {

// Adapter exposing the engine's failure knowledge (F_i) to the tracking
// digraphs in rank space.
class Engine::Knowledge final : public FailureKnowledge {
 public:
  explicit Knowledge(const Engine& e) : e_(e) {}
  bool is_failed(NodeId rank) const override {
    return e_.failed_rank_[rank];
  }
  bool has_pair(NodeId rank_j, NodeId rank_k) const override {
    return e_.fails_.count({e_.view_->member(rank_j),
                            e_.view_->member(rank_k)}) > 0;
  }

 private:
  const Engine& e_;
};

Engine::Engine(NodeId self, View view, GraphBuilder builder, Hooks hooks,
               Options options, Round start_round)
    : self_(self),
      builder_(std::move(builder)),
      hooks_(std::move(hooks)),
      options_(options),
      round_(start_round),
      view_(std::make_shared<const View>(std::move(view))) {
  ALLCONCUR_ASSERT(hooks_.send && hooks_.deliver, "engine hooks required");
  ALLCONCUR_ASSERT(view_->contains(self_), "self must be a view member");
  start_round_state();
}

void Engine::start_round_state() {
  const std::size_t n = view_->size();

  // Failure-free fast path: the common round keeps the same view, so the
  // rank and neighbor lists survive; only a membership change recomputes
  // them. Everything below reuses capacity — assign() refills the flag and
  // slot vectors in place, and the tracking digraphs are reset one by one
  // so their vertex/edge storage persists. A steady-state round transition
  // performs no heap allocation (bench/wire_path measures this).
  if (neighbors_view_ != view_.get()) {
    const auto rank = view_->rank_of(self_);
    ALLCONCUR_ASSERT(rank.has_value(), "self not in view");
    self_rank_ = *rank;
    succs_ = view_->successors_of(self_);
    preds_ = view_->predecessors_of(self_);
    neighbors_view_ = view_.get();
  }

  msgs_.assign(n, nullptr);
  msg_bytes_.assign(n, 0);
  have_.assign(n, false);
  own_broadcast_ = false;
  if (tracking_.size() > n) {
    // View shrank: park the spare digraphs (with their capacity) on the
    // free-list instead of destroying them.
    std::move(tracking_.begin() + static_cast<std::ptrdiff_t>(n),
              tracking_.end(), std::back_inserter(tracking_spares_));
    tracking_.resize(n);
  }
  while (tracking_.size() < n) {
    if (!tracking_spares_.empty()) {
      tracking_.push_back(std::move(tracking_spares_.back()));
      tracking_spares_.pop_back();
    } else {
      tracking_.emplace_back();
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    if (r == self_rank_) {
      tracking_[r].reset_empty();
    } else {
      tracking_[r].reset(static_cast<NodeId>(r));
    }
  }
  active_tracking_ = n > 0 ? n - 1 : 0;
  failed_rank_.assign(n, false);
  suspected_rank_.assign(n, false);
  lost_.assign(n, false);
  decided_ = false;
  fwd_seen_.assign(n, false);
  bwd_seen_.assign(n, false);
  fwd_count_ = bwd_count_ = 0;
}

void Engine::submit(Request request) {
  pending_.push_back(std::move(request));
}

void Engine::submit_opaque(std::size_t bytes) {
  pending_opaque_bytes_ += bytes;
}

void Engine::broadcast_now() {
  if (departed_ || own_broadcast_) return;
  do_broadcast();
  check_termination();
}

void Engine::do_broadcast() {
  ALLCONCUR_ASSERT(!own_broadcast_, "already broadcast this round");
  Message msg;
  if (pending_opaque_bytes_ > 0 && pending_.empty()) {
    msg = Message::bcast_sized(round_, self_, pending_opaque_bytes_);
  } else {
    msg = Message::bcast(round_, self_, pack_batch(pending_));
    // Size-only load can ride along with structured requests: the declared
    // size grows, the fabric charges for the bytes, nothing is
    // materialized. (Simulation-only: the TCP encoder requires the payload
    // to match the declared size.)
    msg.payload_bytes += pending_opaque_bytes_;
    pending_.clear();
  }
  pending_opaque_bytes_ = 0;
  own_broadcast_ = true;
  msgs_[self_rank_] = msg.payload;
  msg_bytes_[self_rank_] = msg.payload_bytes;
  have_[self_rank_] = true;
  stats_.bcast_sent += send_to_successors(msg);
}

std::size_t Engine::fan_out(const std::vector<NodeId>& dsts,
                            const Message& msg, NodeId skip) {
  std::size_t sent = 0;
  FrameRef frame;
  for (NodeId dst : dsts) {
    if (dst == skip) continue;
    if (!frame) {
      // Built once per message, on the first live destination; every
      // further destination shares the same bytes by reference.
      frame = Frame::make(msg);
      ++stats_.frames_encoded;
    }
    stats_.bytes_sent += frame->wire_size();
    hooks_.send(dst, frame);
    ++sent;
  }
  return sent;
}

std::size_t Engine::send_to_successors(const Message& msg, NodeId skip) {
  return fan_out(succs_, msg, skip);
}

std::size_t Engine::send_to_predecessors(const Message& msg, NodeId skip) {
  return fan_out(preds_, msg, skip);
}

void Engine::on_message(NodeId from, const Message& msg) {
  if (departed_) return;
  if (msg.type == MsgType::kHeartbeat) return;  // FD traffic, not ours

  if (msg.round < round_) {
    ++stats_.dropped_stale;
    return;
  }
  if (msg.round > round_) {
    // Peers can run at most one round ahead (they cannot finish R+1
    // without our R+1 message); farther-future traffic means we were
    // evicted — drop it, the harness decides on rejoin.
    if (msg.round == round_ + 1) next_round_buffer_.emplace_back(from, msg);
    return;
  }

  switch (msg.type) {
    case MsgType::kBroadcast:
      handle_bcast(from, msg);
      break;
    case MsgType::kFail:
      handle_fail(msg);
      break;
    case MsgType::kFwd:
    case MsgType::kBwd:
      handle_fwdbwd(from, msg);
      break;
    case MsgType::kHeartbeat:
      break;
  }
}

void Engine::handle_bcast(NodeId from, const Message& msg) {
  ++stats_.bcast_received;
  const auto from_rank = view_->rank_of(from);
  if (from_rank && suspected_rank_[*from_rank]) {
    // §3.3.2: once a predecessor is suspected, everything but failure
    // notifications from it must be ignored, or the FAIL-implies-relayed
    // inference of the tracking digraphs breaks.
    ++stats_.dropped_suspected;
    return;
  }
  const auto origin_rank = view_->rank_of(msg.origin);
  if (!origin_rank) {
    ++stats_.dropped_foreign;
    return;
  }

  // Algorithm 1 line 15: A-broadcast our own message at the latest upon
  // receiving someone else's.
  if (!own_broadcast_) do_broadcast();

  if (have_[*origin_rank]) return;  // duplicate: already relayed it

  if (lost_[*origin_rank] || decided_) {
    // ⋄P only (cannot happen with an accurate FD, see tests): the message
    // set was already fixed without m_origin — adding it now would break
    // the FWD/BWD set inferences. Count and drop.
    ++stats_.dropped_lost;
    return;
  }

  have_[*origin_rank] = true;
  msgs_[*origin_rank] = msg.payload;
  msg_bytes_[*origin_rank] = msg.payload_bytes;

  // Line 17-18: relay to our successors (skipping the link it came from —
  // that peer evidently has it). Counts actual sends: the skipped inbound
  // link does not inflate bcast_sent.
  stats_.bcast_sent += send_to_successors(msg, from);

  // Line 19: m_origin is here, stop tracking it.
  if (!tracking_[*origin_rank].empty()) {
    tracking_[*origin_rank].clear();
    ALLCONCUR_ASSERT(active_tracking_ > 0, "tracking count underflow");
    --active_tracking_;
  }
  check_termination();
}

void Engine::handle_fail(const Message& msg) {
  ++stats_.fail_received;
  process_failure_pair(msg.origin, msg.detector, /*disseminate=*/true);
  check_termination();
}

void Engine::on_suspect(NodeId suspect) {
  if (departed_) return;
  if (!view_->contains(suspect)) return;  // not (or no longer) a member
  process_failure_pair(suspect, self_, /*disseminate=*/true);
  check_termination();
}

void Engine::process_failure_pair(NodeId global_j, NodeId global_k,
                                  bool disseminate) {
  const auto rank_j = view_->rank_of(global_j);
  if (!rank_j) {
    ++stats_.dropped_foreign;
    return;
  }
  if (!fails_.insert({global_j, global_k}).second) return;  // duplicate
  failed_rank_[*rank_j] = true;
  if (global_k == self_) suspected_rank_[*rank_j] = true;

  if (disseminate) {
    // Line 22: R-broadcast the notification onward (fail_sent counts
    // actual sends, not the nominal out-degree).
    stats_.fail_sent +=
        send_to_successors(Message::fail(round_, global_j, global_k));
  }

  // The detector may have left the membership between rounds; its
  // non-receipt information is then moot (it is not a successor in the
  // current overlay), but "p_j failed" still matters.
  const auto rank_k = view_->rank_of(global_k);
  const NodeId k_or_sentinel =
      rank_k ? static_cast<NodeId>(*rank_k) : kInvalidNode;

  // Lines 24-41: update every tracking digraph that contains p_j.
  const Knowledge fk(*this);
  for (std::size_t r = 0; r < tracking_.size(); ++r) {
    if (tracking_[r].empty()) continue;
    if (tracking_[r].on_failure(static_cast<NodeId>(*rank_j), k_or_sentinel,
                                view_->overlay(), fk)) {
      ALLCONCUR_ASSERT(active_tracking_ > 0, "tracking count underflow");
      --active_tracking_;
      lost_[r] = true;  // pruned to empty: m_r is lost, not received
    }
  }
}

void Engine::handle_fwdbwd(NodeId from, const Message& msg) {
  ++stats_.fwd_bwd_received;
  if (options_.fd_mode != FdMode::kEventuallyPerfect) return;
  const auto from_rank = view_->rank_of(from);
  if (from_rank && suspected_rank_[*from_rank]) {
    ++stats_.dropped_suspected;
    return;
  }
  const auto origin_rank = view_->rank_of(msg.origin);
  if (!origin_rank) {
    ++stats_.dropped_foreign;
    return;
  }
  if (msg.type == MsgType::kFwd) {
    if (fwd_seen_[*origin_rank]) return;
    fwd_seen_[*origin_rank] = true;
    if (msg.origin != self_) ++fwd_count_;
    send_to_successors(msg, from);
  } else {
    if (bwd_seen_[*origin_rank]) return;
    bwd_seen_[*origin_rank] = true;
    if (msg.origin != self_) ++bwd_count_;
    // ⟨BWD⟩ travels on the transpose of G.
    send_to_predecessors(msg, from);
  }
  ++stats_.fwd_bwd_sent;
  check_termination();
}

void Engine::check_termination() {
  if (departed_) return;
  if (!own_broadcast_) return;
  if (active_tracking_ != 0) return;

  if (options_.fd_mode == FdMode::kEventuallyPerfect) {
    if (!decided_) {
      // §3.3.2: the message set M_i is decided; announce it forward along
      // G and backward along G's transpose (Kosaraju-style probes).
      decided_ = true;
      fwd_seen_[self_rank_] = true;
      bwd_seen_[self_rank_] = true;
      send_to_successors(Message::fwd(round_, self_));
      send_to_predecessors(Message::bwd(round_, self_));
      stats_.fwd_bwd_sent += 2;
    }
    // Deliver only inside a surviving partition: ⌊n/2⌋ distinct FWD and
    // BWD origins besides ourselves make a strict majority with us.
    const std::size_t needed = view_->size() / 2;
    if (fwd_count_ < needed || bwd_count_ < needed) return;
  }
  deliver_round();
}

void Engine::deliver_round() {
  // --- Assemble the result (deliveries in deterministic id order). ---
  RoundResult result;
  result.round = round_;
  result.view_size = view_->size();
  std::vector<NodeId> leaves;
  // One scan callback for the whole round, not one per delivery.
  const std::function<void(Request::Kind, NodeId)> on_control =
      [&](Request::Kind kind, NodeId subject) {
        if (kind == Request::Kind::kJoin && !view_->contains(subject)) {
          result.joined.push_back(subject);
        } else if (kind == Request::Kind::kLeave &&
                   view_->contains(subject)) {
          leaves.push_back(subject);
        }
      };
  for (std::size_t r = 0; r < view_->size(); ++r) {
    if (!have_[r]) {
      result.removed.push_back(view_->member(r));
      continue;
    }
    Delivery d;
    d.origin = view_->member(r);
    d.payload = msgs_[r];
    d.bytes = msg_bytes_[r];
    result.deliveries.push_back(d);
    // Membership control requests ride in ordinary batches; scanned
    // without materializing the batch (no per-request data copies).
    if (d.payload) scan_membership(d.payload, on_control);
  }
  std::sort(result.joined.begin(), result.joined.end());
  result.joined.erase(std::unique(result.joined.begin(), result.joined.end()),
                      result.joined.end());
  ++stats_.rounds_completed;

  // --- Transition to round R+1 (Algorithm 1 lines 9-13). ---
  std::vector<NodeId> removed_all = result.removed;
  removed_all.insert(removed_all.end(), leaves.begin(), leaves.end());
  const bool membership_changed =
      !removed_all.empty() || !result.joined.empty();

  if (std::find(removed_all.begin(), removed_all.end(), self_) !=
      removed_all.end()) {
    departed_ = true;
    hooks_.deliver(result);
    return;
  }

  std::shared_ptr<const View> next_view =
      membership_changed
          ? std::make_shared<const View>(
                view_->next(removed_all, result.joined, builder_))
          : view_;

  // Carry failure notifications of servers that remain members (line 12).
  std::vector<std::pair<NodeId, NodeId>> carried;
  for (const auto& [j, k] : fails_) {
    if (next_view->contains(j)) carried.emplace_back(j, k);
  }

  ++round_;
  view_ = std::move(next_view);
  fails_.clear();
  start_round_state();

  // Re-seed and resend the carried notifications in the new round
  // (line 13); dissemination uses the new round tag.
  for (const auto& [j, k] : carried) {
    process_failure_pair(j, k, /*disseminate=*/true);
  }

  // Report R before replaying any buffered R+1 traffic so deliveries stay
  // in round order; the hook may submit/broadcast for the new round.
  hooks_.deliver(result);

  if (!next_round_buffer_.empty()) {
    const std::vector<std::pair<NodeId, Message>> buffered =
        std::move(next_round_buffer_);
    next_round_buffer_.clear();
    for (const auto& [from, msg] : buffered) {
      on_message(from, msg);
    }
  }
}

}  // namespace allconcur::core
