// Heartbeat-based failure detection (§3.2).
//
// Every server sends heartbeats to its successors with period Δhb and
// suspects a predecessor after Δto without one. With accurate timing this
// behaves as the perfect detector P the correctness proof assumes; the
// adaptive variant backs the timeout off after evidence of a false
// suspicion, implementing the eventually-perfect detector ⋄P of §3.3.2.
//
// The detector is transport-agnostic: the harness pumps tick(now) and
// on_heartbeat(from, now) and receives suspicion callbacks.
#pragma once

#include <cstddef>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/message.hpp"

namespace allconcur::core {

class HeartbeatFd {
 public:
  struct Params {
    DurationNs period = ms(10);    ///< Δhb (Fig. 7 uses 10ms)
    DurationNs timeout = ms(100);  ///< Δto (Fig. 7 uses 100ms)
    bool adaptive = false;         ///< ⋄P: back off after false suspicion
    DurationNs max_timeout = sec(10);
  };
  struct Hooks {
    /// Heartbeat out: one shared frame per beat, fanned out to all
    /// successors (same encode-once contract as Engine::Hooks::send).
    std::function<void(NodeId dst, const FrameRef& frame)> send;
    std::function<void(NodeId suspect)> suspect;  ///< FD verdict
  };

  HeartbeatFd(NodeId self, Params params, Hooks hooks);

  /// Reconfigures the monitored sets (on every view change): heartbeats go
  /// to successors, timeouts are kept per predecessor.
  void set_peers(std::vector<NodeId> successors,
                 std::vector<NodeId> predecessors, TimeNs now);

  /// A heartbeat (or in fact any message — traffic proves liveness)
  /// arrived from `from`.
  void on_heartbeat(NodeId from, TimeNs now);

  /// Periodic driver: sends heartbeats when due and checks timeouts.
  /// Call at least once per Δhb.
  void tick(TimeNs now);

  bool is_suspected(NodeId peer) const;
  DurationNs current_timeout() const { return timeout_; }

 private:
  NodeId self_;
  Params params_;
  Hooks hooks_;
  DurationNs timeout_;
  TimeNs last_sent_ = -1;
  std::vector<NodeId> successors_;
  std::unordered_map<NodeId, TimeNs> last_heard_;  // per predecessor
  std::unordered_map<NodeId, bool> suspected_;
};

/// §3.2 closed form: lower bound on the probability that a heartbeat FD
/// with period Δhb and timeout Δto behaves indistinguishably from P across
/// n servers of degree d, given the delay tail Pr[T > t].
///   P ≥ (1 − Π_{k=1..⌊Δto/Δhb⌋} Pr[T > Δto − k·Δhb])^{n·d}
double fd_accuracy_lower_bound(std::size_t n, std::size_t d,
                               double hb_period, double timeout,
                               const std::function<double(double)>& delay_tail);

/// Exponential delay tail Pr[T > t] = e^{-t/mean} as a convenience.
std::function<double(double)> exponential_delay_tail(double mean);

}  // namespace allconcur::core
