// Closed-form LogP performance models from §4 of the paper. The Fig. 6
// harness plots these next to measured latencies; the ablation benches use
// them as the no-early-termination worst case.
#pragma once

#include <cstddef>

namespace allconcur::core {

struct LogP {
  double latency_ns;   ///< L
  double overhead_ns;  ///< o
};

/// §4.1: lower bound on termination due to work — a server receives at
/// least (n-1) messages and forwards them to d successors: 2(n-1)·d·o.
double logp_work_bound_ns(std::size_t n, std::size_t d, const LogP& p);

/// §4.2.1: time for the A-broadcast of one message and the empty messages
/// travelling back, T_D(m) + T_D(m_∅) = 2·(L + o_s + o)·D with
/// o_s = o + (d-1)/2·o (contention while sending to d successors).
double logp_depth_ns(std::size_t d, std::size_t diameter, const LogP& p);

/// §4.1: messages received (= sent) per server with f failures:
/// n·d + f·d².
std::size_t messages_per_server(std::size_t n, std::size_t d, std::size_t f);

/// §4.2.2: probability that the depth D stays within [D, D_f] for one
/// round: e^{-n·d·o/MTTF} (the sender survives its own dissemination).
double prob_depth_within_fault_diameter(std::size_t n, std::size_t d,
                                        double overhead_ns, double mttf_ns);

/// §2.2.1 worst case without early termination: f + D_f(G, f)
/// communication steps, each costing (L + o_s + o).
double worst_case_depth_ns(std::size_t f, std::size_t fault_diameter,
                           std::size_t d, const LogP& p);

}  // namespace allconcur::core
