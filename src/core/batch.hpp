// Request batching (§5: "requests are buffered until the current agreement
// round is completed; then, they are packed into a message that is
// A-broadcast in the next round").
//
// A batch is the payload of one ⟨BCAST⟩ message. Besides opaque client
// requests it can carry membership control requests: joins and leaves are
// agreed upon via atomic broadcast itself (§3, "Initial bootstrap and
// dynamic membership"), so they ride in the same batches.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/types.hpp"

namespace allconcur::core {

struct Request {
  enum class Kind : std::uint8_t {
    kData = 0,   ///< opaque client request
    kJoin = 1,   ///< admit `subject` to the membership from the next round
    kLeave = 2,  ///< remove `subject` from the next round on
  };
  Kind kind = Kind::kData;
  NodeId subject = kInvalidNode;   ///< join/leave only
  std::vector<std::uint8_t> data;  ///< data only

  static Request of_data(std::vector<std::uint8_t> bytes);
  static Request join(NodeId subject);
  static Request leave(NodeId subject);
};

/// Per-request framing overhead of the batch wire layout
/// ([u8 kind][u32 subject][u32 len] before the data bytes) — shared by the
/// codec below and by Engine::pending_bytes' backlog accounting.
inline constexpr std::size_t kRequestHeaderBytes = 9;

/// Serializes requests into one payload. Empty input yields a null payload
/// (the paper's "empty message").
Payload pack_batch(const std::vector<Request>& requests);

/// Parses a batch payload; nullopt on malformed bytes. A null payload is an
/// empty batch.
std::optional<std::vector<Request>> unpack_batch(const Payload& payload);

/// Walks only the membership-control entries (joins/leaves) of a batch,
/// skipping over data requests without copying their bytes — the engine
/// runs this on every delivery, so it must not materialize the batch.
/// Returns false (emitting nothing) on malformed bytes; a null payload is
/// an empty batch.
bool scan_membership(
    const Payload& payload,
    const std::function<void(Request::Kind kind, NodeId subject)>& fn);

}  // namespace allconcur::core
