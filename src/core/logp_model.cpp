#include "core/logp_model.hpp"

#include <cmath>

namespace allconcur::core {

double logp_work_bound_ns(std::size_t n, std::size_t d, const LogP& p) {
  return 2.0 * static_cast<double>(n - 1) * static_cast<double>(d) *
         p.overhead_ns;
}

double logp_depth_ns(std::size_t d, std::size_t diameter, const LogP& p) {
  const double o_s =
      p.overhead_ns + (static_cast<double>(d) - 1.0) / 2.0 * p.overhead_ns;
  return 2.0 * (p.latency_ns + o_s + p.overhead_ns) *
         static_cast<double>(diameter);
}

std::size_t messages_per_server(std::size_t n, std::size_t d, std::size_t f) {
  return n * d + f * d * d;
}

double prob_depth_within_fault_diameter(std::size_t n, std::size_t d,
                                        double overhead_ns, double mttf_ns) {
  return std::exp(-static_cast<double>(n) * static_cast<double>(d) *
                  overhead_ns / mttf_ns);
}

double worst_case_depth_ns(std::size_t f, std::size_t fault_diameter,
                           std::size_t d, const LogP& p) {
  const double o_s =
      p.overhead_ns + (static_cast<double>(d) - 1.0) / 2.0 * p.overhead_ns;
  return (p.latency_ns + o_s + p.overhead_ns) *
         static_cast<double>(f + fault_diameter);
}

}  // namespace allconcur::core
