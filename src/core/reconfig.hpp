// Reconfiguration policy (§4.2.2 deployment note: "a practical deployment
// of AllConcur should include regularly replacing failed servers and/or
// updating G after failures").
//
// Failures erode reliability twice: the membership shrinks (fewer servers
// must fail to drop below k) and, since the overlay is rebuilt per view,
// the degree chosen for the original size may no longer meet the target.
// The policy evaluates a view against a reliability target and recommends
// how many standby servers to admit and/or which degree the rebuilt
// overlay needs.
#pragma once

#include <cstddef>
#include <optional>

#include "graph/reliability.hpp"

namespace allconcur::core {

struct ReconfigPolicy {
  double target_nines = 6.0;
  graph::FailureModel failure_model;
  /// Restore the membership to this size when standbys are available.
  std::size_t target_size = 0;
};

struct ReconfigDecision {
  /// Nines delivered by the current (n, d) configuration.
  double current_nines = 0.0;
  bool meets_target = true;
  /// Minimal GS degree meeting the target at the current size (nullopt if
  /// no degree can, e.g. n too small for the required connectivity).
  std::optional<std::size_t> required_degree;
  /// Standby admissions recommended to restore target_size.
  std::size_t replacements_needed = 0;
};

/// Evaluates the current deployment: n live members on a d-connected
/// overlay, against the policy.
ReconfigDecision evaluate_reconfig(const ReconfigPolicy& policy,
                                   std::size_t current_n,
                                   std::size_t current_degree);

}  // namespace allconcur::core
