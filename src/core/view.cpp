#include "core/view.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "graph/gs_digraph.hpp"
#include "graph/reliability.hpp"

namespace allconcur::core {

GraphBuilder make_default_graph_builder() {
  return [](std::size_t n) -> graph::Digraph {
    // make_gs_digraph handles every degenerate size itself: n <= 1 yields
    // the edgeless digraph and n < max(6, 2d) the complete digraph.
    return graph::make_gs_digraph(n, graph::paper_gs_degree(n));
  };
}

View::View(std::vector<NodeId> members, const GraphBuilder& builder,
           const GraphBuilder& fast_builder)
    : members_(std::move(members)) {
  std::sort(members_.begin(), members_.end());
  ALLCONCUR_ASSERT(
      std::adjacent_find(members_.begin(), members_.end()) == members_.end(),
      "duplicate member id");
  overlay_ = builder(members_.size());
  ALLCONCUR_ASSERT(overlay_.order() == members_.size(),
                   "graph builder returned wrong order");
  if (fast_builder) {
    fast_overlay_ = fast_builder(members_.size());
    ALLCONCUR_ASSERT(fast_overlay_.order() == members_.size(),
                     "fast graph builder returned wrong order");
    union_overlay_ = graph::Digraph(members_.size());
    for (NodeId v = 0; v < members_.size(); ++v) {
      for (NodeId s : overlay_.successors(v)) {
        union_overlay_.add_edge_if_absent(v, s);
      }
      for (NodeId s : fast_overlay_.successors(v)) {
        union_overlay_.add_edge_if_absent(v, s);
      }
    }
  }
}

NodeId View::member(std::size_t rank) const {
  ALLCONCUR_ASSERT(rank < members_.size(), "rank out of range");
  return members_[rank];
}

std::optional<std::size_t> View::rank_of(NodeId id) const {
  const auto it = std::lower_bound(members_.begin(), members_.end(), id);
  if (it == members_.end() || *it != id) return std::nullopt;
  return static_cast<std::size_t>(it - members_.begin());
}

std::vector<NodeId> View::neighbors(const graph::Digraph& g, NodeId id,
                                    bool successors) const {
  const auto rank = rank_of(id);
  ALLCONCUR_ASSERT(rank.has_value(), "not a member");
  ALLCONCUR_ASSERT(g.order() == members_.size(), "overlay absent");
  std::vector<NodeId> out;
  const auto& adj = successors
                        ? g.successors(static_cast<NodeId>(*rank))
                        : g.predecessors(static_cast<NodeId>(*rank));
  for (NodeId r : adj) out.push_back(members_[r]);
  return out;
}

std::vector<NodeId> View::successors_of(NodeId id) const {
  return neighbors(overlay_, id, true);
}

std::vector<NodeId> View::predecessors_of(NodeId id) const {
  return neighbors(overlay_, id, false);
}

std::vector<NodeId> View::fast_successors_of(NodeId id) const {
  return neighbors(fast_overlay_, id, true);
}

std::vector<NodeId> View::fast_predecessors_of(NodeId id) const {
  return neighbors(fast_overlay_, id, false);
}

std::vector<NodeId> View::monitor_successors_of(NodeId id) const {
  return neighbors(monitor_overlay(), id, true);
}

std::vector<NodeId> View::monitor_predecessors_of(NodeId id) const {
  return neighbors(monitor_overlay(), id, false);
}

View View::next(const std::vector<NodeId>& removed,
                const std::vector<NodeId>& added, const GraphBuilder& builder,
                const GraphBuilder& fast_builder) const {
  std::vector<NodeId> next_members;
  next_members.reserve(members_.size() + added.size());
  for (NodeId m : members_) {
    if (std::find(removed.begin(), removed.end(), m) == removed.end()) {
      next_members.push_back(m);
    }
  }
  for (NodeId a : added) {
    if (std::find(next_members.begin(), next_members.end(), a) ==
        next_members.end()) {
      next_members.push_back(a);
    }
  }
  return View(std::move(next_members), builder, fast_builder);
}

}  // namespace allconcur::core
