// Membership view: the set of servers participating in a round and the
// overlay digraph G connecting them.
//
// Wire messages carry stable global NodeIds; the overlay digraph is built
// over dense ranks [0, n). A View owns the (sorted) member list, the
// rank <-> id mapping and the digraph, and is immutable — membership
// changes build a new View at a round boundary (§3, iterating AllConcur).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace allconcur::core {

/// Builds the overlay for a given membership size. The default builder
/// (see make_default_graph_builder) uses GS(n, d) with the paper's Table 3
/// degrees; degenerate sizes take make_gs_digraph's documented
/// complete-graph fallback (n < max(6, 2d)).
using GraphBuilder = std::function<graph::Digraph(std::size_t n)>;

GraphBuilder make_default_graph_builder();

class View {
 public:
  /// `members` need not be sorted; duplicates are asserted away.
  View(std::vector<NodeId> members, const GraphBuilder& builder);

  std::size_t size() const { return members_.size(); }
  const std::vector<NodeId>& members() const { return members_; }
  bool contains(NodeId id) const { return rank_of(id).has_value(); }

  NodeId member(std::size_t rank) const;
  std::optional<std::size_t> rank_of(NodeId id) const;

  /// Overlay digraph; vertex v of the digraph is rank v.
  const graph::Digraph& overlay() const { return overlay_; }

  /// Successors / predecessors of a member, as global ids.
  std::vector<NodeId> successors_of(NodeId id) const;
  std::vector<NodeId> predecessors_of(NodeId id) const;

  /// Derives the next-round view: current minus `removed` plus `added`.
  View next(const std::vector<NodeId>& removed,
            const std::vector<NodeId>& added,
            const GraphBuilder& builder) const;

 private:
  std::vector<NodeId> members_;  // sorted
  graph::Digraph overlay_;
};

}  // namespace allconcur::core
