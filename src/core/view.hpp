// Membership view: the set of servers participating in a round and the
// overlay digraph G connecting them.
//
// Wire messages carry stable global NodeIds; the overlay digraph is built
// over dense ranks [0, n). A View owns the (sorted) member list, the
// rank <-> id mapping and the digraph, and is immutable — membership
// changes build a new View at a round boundary (§3, iterating AllConcur).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace allconcur::core {

/// Builds the overlay for a given membership size. The default builder
/// (see make_default_graph_builder) uses GS(n, d) with the paper's Table 3
/// degrees; degenerate sizes take make_gs_digraph's documented
/// complete-graph fallback (n < max(6, 2d)).
using GraphBuilder = std::function<graph::Digraph(std::size_t n)>;

GraphBuilder make_default_graph_builder();

class View {
 public:
  /// `members` need not be sorted; duplicates are asserted away.
  /// `fast_builder` (dual-digraph mode, AllConcur+) additionally builds
  /// the unreliable overlay G_U over the same membership; pass an empty
  /// function for the classic single-overlay view.
  View(std::vector<NodeId> members, const GraphBuilder& builder,
       const GraphBuilder& fast_builder = GraphBuilder());

  std::size_t size() const { return members_.size(); }
  const std::vector<NodeId>& members() const { return members_; }
  bool contains(NodeId id) const { return rank_of(id).has_value(); }

  NodeId member(std::size_t rank) const;
  std::optional<std::size_t> rank_of(NodeId id) const;

  /// Reliable overlay digraph G_R; vertex v of the digraph is rank v.
  const graph::Digraph& overlay() const { return overlay_; }

  /// True iff this view carries a paired unreliable overlay G_U.
  bool has_fast_overlay() const { return fast_overlay_.order() > 0; }
  /// Unreliable overlay G_U (dual-digraph mode only).
  const graph::Digraph& fast_overlay() const { return fast_overlay_; }
  /// Union overlay G_U ∪ G_R over ranks — the digraph message tracking
  /// and failure monitoring must assume in dual mode (a message may have
  /// travelled either graph). Equals overlay() without a fast overlay.
  const graph::Digraph& monitor_overlay() const {
    return has_fast_overlay() ? union_overlay_ : overlay_;
  }

  /// Successors / predecessors of a member in G_R, as global ids.
  std::vector<NodeId> successors_of(NodeId id) const;
  std::vector<NodeId> predecessors_of(NodeId id) const;
  /// Same along G_U (dual-digraph mode only).
  std::vector<NodeId> fast_successors_of(NodeId id) const;
  std::vector<NodeId> fast_predecessors_of(NodeId id) const;
  /// Neighbors along the monitor overlay: the links a failure detector
  /// must watch and a dual-mode transport must maintain. Without a fast
  /// overlay these are exactly successors_of / predecessors_of.
  std::vector<NodeId> monitor_successors_of(NodeId id) const;
  std::vector<NodeId> monitor_predecessors_of(NodeId id) const;

  /// Derives the next-round view: current minus `removed` plus `added`.
  View next(const std::vector<NodeId>& removed,
            const std::vector<NodeId>& added, const GraphBuilder& builder,
            const GraphBuilder& fast_builder = GraphBuilder()) const;

 private:
  std::vector<NodeId> neighbors(const graph::Digraph& g, NodeId id,
                                bool successors) const;

  std::vector<NodeId> members_;  // sorted
  graph::Digraph overlay_;       // G_R
  graph::Digraph fast_overlay_;  // G_U (order 0 when absent)
  graph::Digraph union_overlay_; // G_U ∪ G_R (order 0 when G_U absent)
};

}  // namespace allconcur::core
