#include "core/batch.hpp"

#include <cstring>

namespace allconcur::core {

Request Request::of_data(std::vector<std::uint8_t> bytes) {
  Request r;
  r.kind = Kind::kData;
  r.data = std::move(bytes);
  return r;
}

Request Request::join(NodeId subject) {
  Request r;
  r.kind = Kind::kJoin;
  r.subject = subject;
  return r;
}

Request Request::leave(NodeId subject) {
  Request r;
  r.kind = Kind::kLeave;
  r.subject = subject;
  return r;
}

// Batch layout: per request [u8 kind][u32 subject][u32 len][len bytes].
Payload pack_batch(const std::vector<Request>& requests) {
  if (requests.empty()) return nullptr;
  std::size_t total = 0;
  for (const Request& r : requests) total += kRequestHeaderBytes + r.data.size();
  std::vector<std::uint8_t> out(total);
  std::size_t at = 0;
  for (const Request& r : requests) {
    out[at] = static_cast<std::uint8_t>(r.kind);
    const std::uint32_t subject = r.subject;
    std::memcpy(out.data() + at + 1, &subject, 4);
    const std::uint32_t len = static_cast<std::uint32_t>(r.data.size());
    std::memcpy(out.data() + at + 5, &len, 4);
    // Guard empty requests: memcpy from a null data() is UB even for 0.
    if (!r.data.empty()) {
      std::memcpy(out.data() + at + kRequestHeaderBytes, r.data.data(),
                  r.data.size());
    }
    at += kRequestHeaderBytes + r.data.size();
  }
  return make_payload(std::move(out));
}

bool scan_membership(
    const Payload& payload,
    const std::function<void(Request::Kind kind, NodeId subject)>& fn) {
  if (!payload) return true;
  const auto& bytes = *payload;
  // Validate the whole structure before emitting anything, so a malformed
  // batch is rejected atomically (same contract as unpack_batch).
  for (std::size_t at = 0; at < bytes.size();) {
    if (at + kRequestHeaderBytes > bytes.size() || bytes[at] > 2) return false;
    std::uint32_t len;
    std::memcpy(&len, bytes.data() + at + 5, 4);
    if (at + kRequestHeaderBytes + len > bytes.size()) return false;
    at += kRequestHeaderBytes + len;
  }
  for (std::size_t at = 0; at < bytes.size();) {
    const auto kind = static_cast<Request::Kind>(bytes[at]);
    std::uint32_t subject, len;
    std::memcpy(&subject, bytes.data() + at + 1, 4);
    std::memcpy(&len, bytes.data() + at + 5, 4);
    if (kind != Request::Kind::kData) fn(kind, subject);
    at += kRequestHeaderBytes + len;
  }
  return true;
}

std::optional<std::vector<Request>> unpack_batch(const Payload& payload) {
  std::vector<Request> out;
  if (!payload) return out;
  const auto& bytes = *payload;
  std::size_t at = 0;
  while (at < bytes.size()) {
    if (at + kRequestHeaderBytes > bytes.size()) return std::nullopt;
    Request r;
    if (bytes[at] > 2) return std::nullopt;
    r.kind = static_cast<Request::Kind>(bytes[at]);
    std::uint32_t subject, len;
    std::memcpy(&subject, bytes.data() + at + 1, 4);
    std::memcpy(&len, bytes.data() + at + 5, 4);
    r.subject = subject;
    if (at + kRequestHeaderBytes + len > bytes.size()) return std::nullopt;
    r.data.assign(
        bytes.begin() + static_cast<std::ptrdiff_t>(at + kRequestHeaderBytes),
        bytes.begin() +
            static_cast<std::ptrdiff_t>(at + kRequestHeaderBytes + len));
    out.push_back(std::move(r));
    at += kRequestHeaderBytes + len;
  }
  return out;
}

}  // namespace allconcur::core
