#include "core/message.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace allconcur::core {

Message Message::bcast(Round r, NodeId origin, Payload p) {
  Message m;
  m.type = MsgType::kBroadcast;
  m.round = r;
  m.origin = origin;
  m.payload_bytes = payload_size(p);
  m.payload = std::move(p);
  return m;
}

Message Message::bcast_sized(Round r, NodeId origin, std::uint64_t bytes) {
  Message m;
  m.type = MsgType::kBroadcast;
  m.round = r;
  m.origin = origin;
  m.payload_bytes = bytes;
  return m;
}

Message Message::ubcast(Round r, NodeId origin, Payload p,
                        std::uint64_t bytes) {
  if (p) {
    ALLCONCUR_ASSERT(p->size() == bytes, "payload size mismatch");
  }
  Message m;
  m.type = MsgType::kUBcast;
  m.round = r;
  m.origin = origin;
  m.payload_bytes = bytes;
  m.payload = std::move(p);
  return m;
}

Message Message::fallback(Round r, NodeId initiator, std::uint32_t attempt) {
  Message m;
  m.type = MsgType::kFallback;
  m.round = r;
  m.origin = initiator;
  m.detector = attempt;
  return m;
}

Message Message::fail(Round r, NodeId suspected, NodeId detector) {
  Message m;
  m.type = MsgType::kFail;
  m.round = r;
  m.origin = suspected;
  m.detector = detector;
  return m;
}

Message Message::fwd(Round r, NodeId origin) {
  Message m;
  m.type = MsgType::kFwd;
  m.round = r;
  m.origin = origin;
  return m;
}

Message Message::bwd(Round r, NodeId origin) {
  Message m;
  m.type = MsgType::kBwd;
  m.round = r;
  m.origin = origin;
  return m;
}

Message Message::heartbeat(NodeId origin) {
  Message m;
  m.type = MsgType::kHeartbeat;
  m.origin = origin;
  return m;
}

namespace {

// Little-endian header layout (32 bytes):
//   [0]  u8  type
//   [1]  u8  reserved
//   [2]  u16 magic (Message::kFrameMagic)
//   [4]  u32 origin
//   [8]  u32 detector
//   [12] u32 payload length
//   [16] u64 round
//   [24] u32 FNV-1a checksum over the payload bytes
//   [28] u32 FNV-1a checksum over header bytes [0, 28)
// The header checksum seals the length field, so a parser never waits on
// a corrupted length; the payload checksum then guards the body without
// re-reading the header.
template <typename T>
void put(std::uint8_t* out, std::size_t offset, T value) {
  std::memcpy(out + offset, &value, sizeof(T));
}

template <typename T>
T get(std::span<const std::uint8_t> in, std::size_t offset) {
  T value;
  std::memcpy(&value, in.data() + offset, sizeof(T));
  return value;
}

constexpr std::uint32_t kFnvOffset = 2166136261u;
constexpr std::uint32_t kFnvPrime = 16777619u;

std::uint32_t fnv1a(std::uint32_t h, const std::uint8_t* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// FNV-1a over `count` zero bytes: each step is h = (h ^ 0) * prime, so the
/// whole run folds to h * prime^count — O(log count) by binary
/// exponentiation. Size-only payloads (throughput benches) are hashed
/// without ever materializing their bytes.
std::uint32_t fnv1a_zeros(std::uint32_t h, std::uint64_t count) {
  std::uint32_t mult = 1;
  std::uint32_t base = kFnvPrime;
  while (count > 0) {
    if (count & 1) mult *= base;
    base *= base;
    count >>= 1;
  }
  return h * mult;
}

/// Checksum of the message's payload, which may be shared bytes or a
/// declared-length zero run (size-only).
std::uint32_t payload_checksum(const Payload& payload,
                               std::uint64_t payload_bytes) {
  if (payload && !payload->empty()) {
    return fnv1a(kFnvOffset, payload->data(), payload->size());
  }
  return fnv1a_zeros(kFnvOffset, payload_bytes);
}

void encode_header(const Message& m, std::uint8_t* out) {
  ALLCONCUR_ASSERT(m.payload_bytes <= Message::kMaxPayloadBytes,
                   "payload exceeds the 32-bit wire length field");
  put<std::uint8_t>(out, 0, static_cast<std::uint8_t>(m.type));
  put<std::uint8_t>(out, 1, m.trace);
  put<std::uint16_t>(out, 2, Message::kFrameMagic);
  put<std::uint32_t>(out, 4, m.origin);
  put<std::uint32_t>(out, 8, m.detector);
  put<std::uint32_t>(out, 12, static_cast<std::uint32_t>(m.payload_bytes));
  put<std::uint64_t>(out, 16, m.round);
  put<std::uint32_t>(out, Message::kPayloadSumOffset,
                     payload_checksum(m.payload, m.payload_bytes));
  put<std::uint32_t>(out, Message::kHeaderSumOffset,
                     fnv1a(kFnvOffset, out, Message::kHeaderSumOffset));
}

/// Parses header fields only; nullopt on an unknown type tag or a missing
/// framing magic.
std::optional<Message> decode_header(std::span<const std::uint8_t> bytes) {
  Message m;
  const auto raw_type = get<std::uint8_t>(bytes, 0);
  if (raw_type < 1 || raw_type > 7) return std::nullopt;
  if (get<std::uint16_t>(bytes, 2) != Message::kFrameMagic) return std::nullopt;
  m.type = static_cast<MsgType>(raw_type);
  m.trace = get<std::uint8_t>(bytes, 1);
  m.origin = get<std::uint32_t>(bytes, 4);
  m.detector = get<std::uint32_t>(bytes, 8);
  m.payload_bytes = get<std::uint32_t>(bytes, 12);
  m.round = get<std::uint64_t>(bytes, 16);
  return m;
}

/// Is `bytes` (>= kHeaderBytes) a verified frame header? Cheap field
/// rejects first, then the header checksum — which seals the length field,
/// so a parser that accepts this header may safely wait for (or skip)
/// exactly the declared payload.
bool header_plausible(std::span<const std::uint8_t> bytes) {
  const auto raw_type = get<std::uint8_t>(bytes, 0);
  if (raw_type < 1 || raw_type > 7) return false;
  if (get<std::uint16_t>(bytes, 2) != Message::kFrameMagic) return false;
  if (get<std::uint32_t>(bytes, 12) > kMaxStreamPayloadBytes) return false;
  return fnv1a(kFnvOffset, bytes.data(), Message::kHeaderSumOffset) ==
         get<std::uint32_t>(bytes, Message::kHeaderSumOffset);
}

/// Same test on an incomplete header tail: checks only the fields that
/// have arrived, so a genuine frame split across reads is never discarded.
bool header_prefix_plausible(std::span<const std::uint8_t> bytes) {
  if (!bytes.empty() && (bytes[0] < 1 || bytes[0] > 7)) return false;
  if (bytes.size() >= 4 &&
      get<std::uint16_t>(bytes, 2) != Message::kFrameMagic) {
    return false;
  }
  if (bytes.size() >= 16 &&
      get<std::uint32_t>(bytes, 12) > kMaxStreamPayloadBytes) {
    return false;
  }
  return true;
}

/// Scans forward from `from` for the next offset that could start a frame
/// (full header plausible, or a plausible prefix at the buffer tail).
std::size_t resync_scan(std::span<const std::uint8_t> buf, std::size_t from) {
  for (std::size_t p = from; p < buf.size(); ++p) {
    const std::size_t avail = buf.size() - p;
    if (avail >= Message::kHeaderBytes) {
      if (header_plausible({buf.data() + p, Message::kHeaderBytes})) return p;
    } else {
      if (header_prefix_plausible({buf.data() + p, avail})) return p;
    }
  }
  return buf.size();
}

}  // namespace

FrameRef Frame::make(Message m) {
  if (m.payload) {
    ALLCONCUR_ASSERT(m.payload->size() == m.payload_bytes,
                     "payload size mismatch");
  }
  auto frame = std::make_shared<Frame>(MakeTag{});
  encode_header(m, frame->header_.data());
  frame->msg_ = std::move(m);
  return frame;
}

const Payload& Frame::wire_payload() const {
  if (msg_.payload) return msg_.payload;
  if (!wire_payload_ && msg_.payload_bytes > 0) {
    wire_payload_ = make_payload(
        std::vector<std::uint8_t>(msg_.payload_bytes, 0));
  }
  return wire_payload_;
}

FrameRef Frame::corrupt_copy(const Frame& f, std::uint64_t index) {
  auto copy = std::make_shared<Frame>(MakeTag{});
  copy->msg_ = f.msg_;
  copy->header_ = f.header_;
  const std::size_t at =
      static_cast<std::size_t>(index % static_cast<std::uint64_t>(f.wire_size()));
  if (at < Message::kHeaderBytes) {
    copy->header_[at] ^= 0xff;
    return copy;
  }
  // Payload flip needs private bytes — the original payload is shared with
  // every other successor's queue (size-only payloads materialize here).
  const Payload& src = f.wire_payload();
  auto bytes = std::make_shared<std::vector<std::uint8_t>>(*src);
  (*bytes)[at - Message::kHeaderBytes] ^= 0xff;
  copy->msg_.payload = std::move(bytes);
  return copy;
}

std::vector<std::uint8_t> Frame::to_bytes() const {
  std::vector<std::uint8_t> out(wire_size());
  std::memcpy(out.data(), header_.data(), header_.size());
  const Payload& p = wire_payload();
  if (p && !p->empty()) {
    std::memcpy(out.data() + header_.size(), p->data(), p->size());
  }
  return out;
}

std::vector<std::uint8_t> encode(const Message& m) {
  ALLCONCUR_ASSERT(m.payload_bytes <= Message::kMaxPayloadBytes,
                   "payload exceeds the 32-bit wire length field");
  std::vector<std::uint8_t> out(Message::kHeaderBytes + m.payload_bytes, 0);
  encode_header(m, out.data());
  if (m.payload) {
    ALLCONCUR_ASSERT(m.payload->size() == m.payload_bytes,
                     "payload size mismatch");
    // Guard empty payloads: memcpy from a null data() is UB even for 0.
    if (!m.payload->empty()) {
      std::memcpy(out.data() + Message::kHeaderBytes, m.payload->data(),
                  m.payload->size());
    }
  }
  return out;
}

std::optional<std::size_t> frame_size(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < Message::kHeaderBytes) return std::nullopt;
  return Message::kHeaderBytes + get<std::uint32_t>(bytes, 12);
}

std::optional<Message> decode(std::span<const std::uint8_t> bytes) {
  const auto frame = frame_size(bytes);
  if (!frame || bytes.size() < *frame) return std::nullopt;
  auto m = decode_header(bytes);
  if (!m) return std::nullopt;
  if (fnv1a(kFnvOffset, bytes.data(), Message::kHeaderSumOffset) !=
      get<std::uint32_t>(bytes, Message::kHeaderSumOffset)) {
    return std::nullopt;  // torn header: none of the fields are trustworthy
  }
  const std::uint32_t body = fnv1a(
      kFnvOffset, bytes.data() + Message::kHeaderBytes, m->payload_bytes);
  if (body != get<std::uint32_t>(bytes, Message::kPayloadSumOffset)) {
    return std::nullopt;  // corrupted payload: never deliver it
  }
  if (m->payload_bytes > 0) {
    m->payload = make_payload(std::vector<std::uint8_t>(
        bytes.begin() + Message::kHeaderBytes,
        bytes.begin() + static_cast<std::ptrdiff_t>(*frame)));
  }
  return m;
}

std::optional<Message> decode(const Frame& frame) {
  auto m = decode_header(frame.header());
  if (!m) return std::nullopt;
  if (m->payload_bytes > 0) {
    const Payload& p = frame.wire_payload();
    if (!p || p->size() != m->payload_bytes) return std::nullopt;
    m->payload = p;  // borrow: shares the frame's bytes, no copy
  }
  return m;
}

std::size_t parse_stream(std::span<const std::uint8_t> buf, std::size_t start,
                         StreamStats& stats,
                         const std::function<void(const Message&)>& sink) {
  std::size_t at = start;
  while (at < buf.size()) {
    const std::size_t avail = buf.size() - at;
    if (avail < Message::kHeaderBytes) {
      // Incomplete header: keep a consistent prefix for the next read,
      // skip garbage now.
      if (header_prefix_plausible({buf.data() + at, avail})) break;
      ++stats.corrupt_drops;
      ++stats.resyncs;
      at = resync_scan(buf, at + 1);
      continue;
    }
    if (!header_plausible({buf.data() + at, Message::kHeaderBytes})) {
      ++stats.corrupt_drops;
      ++stats.resyncs;
      at = resync_scan(buf, at + 1);
      continue;
    }
    const std::size_t need =
        Message::kHeaderBytes + get<std::uint32_t>({buf.data() + at, avail}, 12);
    if (avail < need) break;  // header verified: safe to wait for the rest
    const auto msg = decode(std::span(buf.data() + at, need));
    if (!msg) {
      // The header checksum already passed, so this is payload corruption
      // and the declared frame boundary is trustworthy: drop the frame and
      // step over exactly its bytes — no resync scan needed.
      ++stats.corrupt_drops;
      at += need;
      continue;
    }
    ++stats.frames;
    sink(*msg);
    at += need;
  }
  return at;
}

}  // namespace allconcur::core
