#include "core/message.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace allconcur::core {

Message Message::bcast(Round r, NodeId origin, Payload p) {
  Message m;
  m.type = MsgType::kBroadcast;
  m.round = r;
  m.origin = origin;
  m.payload_bytes = payload_size(p);
  m.payload = std::move(p);
  return m;
}

Message Message::bcast_sized(Round r, NodeId origin, std::uint64_t bytes) {
  Message m;
  m.type = MsgType::kBroadcast;
  m.round = r;
  m.origin = origin;
  m.payload_bytes = bytes;
  return m;
}

Message Message::ubcast(Round r, NodeId origin, Payload p,
                        std::uint64_t bytes) {
  if (p) {
    ALLCONCUR_ASSERT(p->size() == bytes, "payload size mismatch");
  }
  Message m;
  m.type = MsgType::kUBcast;
  m.round = r;
  m.origin = origin;
  m.payload_bytes = bytes;
  m.payload = std::move(p);
  return m;
}

Message Message::fallback(Round r, NodeId initiator, std::uint32_t attempt) {
  Message m;
  m.type = MsgType::kFallback;
  m.round = r;
  m.origin = initiator;
  m.detector = attempt;
  return m;
}

Message Message::fail(Round r, NodeId suspected, NodeId detector) {
  Message m;
  m.type = MsgType::kFail;
  m.round = r;
  m.origin = suspected;
  m.detector = detector;
  return m;
}

Message Message::fwd(Round r, NodeId origin) {
  Message m;
  m.type = MsgType::kFwd;
  m.round = r;
  m.origin = origin;
  return m;
}

Message Message::bwd(Round r, NodeId origin) {
  Message m;
  m.type = MsgType::kBwd;
  m.round = r;
  m.origin = origin;
  return m;
}

Message Message::heartbeat(NodeId origin) {
  Message m;
  m.type = MsgType::kHeartbeat;
  m.origin = origin;
  return m;
}

namespace {

// Little-endian header layout (24 bytes):
//   [0]  u8  type
//   [1]  u8  reserved
//   [2]  u16 reserved
//   [4]  u32 origin
//   [8]  u32 detector
//   [12] u32 payload length
//   [16] u64 round
template <typename T>
void put(std::uint8_t* out, std::size_t offset, T value) {
  std::memcpy(out + offset, &value, sizeof(T));
}

template <typename T>
T get(std::span<const std::uint8_t> in, std::size_t offset) {
  T value;
  std::memcpy(&value, in.data() + offset, sizeof(T));
  return value;
}

void encode_header(const Message& m, std::uint8_t* out) {
  ALLCONCUR_ASSERT(m.payload_bytes <= Message::kMaxPayloadBytes,
                   "payload exceeds the 32-bit wire length field");
  put<std::uint8_t>(out, 0, static_cast<std::uint8_t>(m.type));
  put<std::uint8_t>(out, 1, 0);
  put<std::uint16_t>(out, 2, 0);
  put<std::uint32_t>(out, 4, m.origin);
  put<std::uint32_t>(out, 8, m.detector);
  put<std::uint32_t>(out, 12, static_cast<std::uint32_t>(m.payload_bytes));
  put<std::uint64_t>(out, 16, m.round);
}

/// Parses header fields only; nullopt on an unknown type tag.
std::optional<Message> decode_header(std::span<const std::uint8_t> bytes) {
  Message m;
  const auto raw_type = get<std::uint8_t>(bytes, 0);
  if (raw_type < 1 || raw_type > 7) return std::nullopt;
  m.type = static_cast<MsgType>(raw_type);
  m.origin = get<std::uint32_t>(bytes, 4);
  m.detector = get<std::uint32_t>(bytes, 8);
  m.payload_bytes = get<std::uint32_t>(bytes, 12);
  m.round = get<std::uint64_t>(bytes, 16);
  return m;
}

}  // namespace

FrameRef Frame::make(Message m) {
  if (m.payload) {
    ALLCONCUR_ASSERT(m.payload->size() == m.payload_bytes,
                     "payload size mismatch");
  }
  auto frame = std::make_shared<Frame>(MakeTag{});
  encode_header(m, frame->header_.data());
  frame->msg_ = std::move(m);
  return frame;
}

const Payload& Frame::wire_payload() const {
  if (msg_.payload) return msg_.payload;
  if (!wire_payload_ && msg_.payload_bytes > 0) {
    wire_payload_ = make_payload(
        std::vector<std::uint8_t>(msg_.payload_bytes, 0));
  }
  return wire_payload_;
}

std::vector<std::uint8_t> Frame::to_bytes() const {
  std::vector<std::uint8_t> out(wire_size());
  std::memcpy(out.data(), header_.data(), header_.size());
  const Payload& p = wire_payload();
  if (p && !p->empty()) {
    std::memcpy(out.data() + header_.size(), p->data(), p->size());
  }
  return out;
}

std::vector<std::uint8_t> encode(const Message& m) {
  ALLCONCUR_ASSERT(m.payload_bytes <= Message::kMaxPayloadBytes,
                   "payload exceeds the 32-bit wire length field");
  std::vector<std::uint8_t> out(Message::kHeaderBytes + m.payload_bytes, 0);
  encode_header(m, out.data());
  if (m.payload) {
    ALLCONCUR_ASSERT(m.payload->size() == m.payload_bytes,
                     "payload size mismatch");
    // Guard empty payloads: memcpy from a null data() is UB even for 0.
    if (!m.payload->empty()) {
      std::memcpy(out.data() + Message::kHeaderBytes, m.payload->data(),
                  m.payload->size());
    }
  }
  return out;
}

std::optional<std::size_t> frame_size(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < Message::kHeaderBytes) return std::nullopt;
  return Message::kHeaderBytes + get<std::uint32_t>(bytes, 12);
}

std::optional<Message> decode(std::span<const std::uint8_t> bytes) {
  const auto frame = frame_size(bytes);
  if (!frame || bytes.size() < *frame) return std::nullopt;
  auto m = decode_header(bytes);
  if (!m) return std::nullopt;
  if (m->payload_bytes > 0) {
    m->payload = make_payload(std::vector<std::uint8_t>(
        bytes.begin() + Message::kHeaderBytes,
        bytes.begin() + static_cast<std::ptrdiff_t>(*frame)));
  }
  return m;
}

std::optional<Message> decode(const Frame& frame) {
  auto m = decode_header(frame.header());
  if (!m) return std::nullopt;
  if (m->payload_bytes > 0) {
    const Payload& p = frame.wire_payload();
    if (!p || p->size() != m->payload_bytes) return std::nullopt;
    m->payload = p;  // borrow: shares the frame's bytes, no copy
  }
  return m;
}

}  // namespace allconcur::core
