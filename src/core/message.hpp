// Wire messages of the AllConcur protocol (§3).
//
// The algorithm distinguishes ⟨BCAST, m_j⟩ and ⟨FAIL, p_j, p_k⟩; iterating
// rounds tags every message with its round R so that (R, p_j) identifies a
// broadcast and (R, p_j, p_k) a failure notification. The ⋄P extension
// (§3.3.2) adds ⟨FWD, p_i⟩ / ⟨BWD, p_i⟩, and the failure detector uses
// heartbeats.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace allconcur::core {

enum class MsgType : std::uint8_t {
  kBroadcast = 1,  ///< ⟨BCAST, m⟩: A-broadcast message, relayed along G_R
  kFail = 2,       ///< ⟨FAIL, p_j, p_k⟩: p_k suspects its predecessor p_j
  kFwd = 3,        ///< ⟨FWD, p_i⟩: ⋄P surviving-partition probe along G
  kBwd = 4,        ///< ⟨BWD, p_i⟩: same along the transpose of G
  kHeartbeat = 5,  ///< FD heartbeat (not round-scoped)
  /// Dual-digraph fast path (AllConcur+): an untracked broadcast relayed
  /// along the unreliable overlay G_U. Identical payload semantics to
  /// kBroadcast; carries no tracking obligations.
  kUBcast = 6,
  /// Dual-digraph fallback trigger: "re-execute round R reliably over
  /// G_R". R-broadcast along G_R; origin is the initiating server.
  kFallback = 7,
};

struct Message {
  MsgType type{MsgType::kHeartbeat};
  Round round = 0;
  /// BCAST: sender(m); FAIL: the suspected server p_j; FWD/BWD: the server
  /// that decided its message set; HB: the heartbeating server.
  NodeId origin = kInvalidNode;
  /// FAIL only: the detecting successor p_k.
  /// Sampled BCAST/UBCAST (trace bit set): repurposed as the cumulative
  /// one-way latency estimate in nanoseconds, saturating — each relay adds
  /// its local per-hop estimate before re-encoding (obs/trace.hpp).
  NodeId detector = kInvalidNode;
  /// Causal-trace context riding header byte 1 (the reserved byte of the
  /// 32-byte dual-checksum layout, previously written as zero and never
  /// read). Bit 7: this broadcast is trace-sampled; bits 0..6: hop count,
  /// incremented at every relay, saturating at 127 (diameters are
  /// O(log n), so 7 bits never saturate in practice). Zero for unsampled
  /// traffic, so the wire image of a non-traced frame is unchanged.
  std::uint8_t trace = 0;
  /// BCAST only; may be null together with payload_bytes > 0 for
  /// "size-only" payloads used by throughput benches.
  Payload payload;
  std::uint64_t payload_bytes = 0;

  /// Serialized header size (see message.cpp for the layout). The header
  /// ends with two 32-bit FNV-1a checksums: one over the payload bytes and
  /// one over the header itself. Splitting them lets a stream parser
  /// validate the length field *before* waiting for the payload — a
  /// corrupted length can otherwise stall a connection indefinitely — and
  /// lets a payload-corrupt frame be skipped by its (now trusted) declared
  /// length instead of a blind resync scan.
  static constexpr std::size_t kHeaderBytes = 32;
  /// Offset of the payload checksum (FNV-1a over the payload bytes; the
  /// FNV offset basis when the frame carries none).
  static constexpr std::size_t kPayloadSumOffset = 24;
  /// Offset of the header checksum; also the number of header bytes it
  /// covers (everything before it, payload checksum included).
  static constexpr std::size_t kHeaderSumOffset = 28;
  /// Framing magic at header offset 2. Besides rejecting foreign traffic,
  /// it is the anchor the stream parser scans for when resynchronizing
  /// after a torn frame.
  static constexpr std::uint16_t kFrameMagic = 0xAC17;
  /// Wire limit: the payload length field is 32 bits. encode() asserts
  /// this rather than silently truncating the frame length.
  static constexpr std::uint64_t kMaxPayloadBytes = 0xffffffffull;
  std::size_t wire_size() const { return kHeaderBytes + payload_bytes; }

  /// Trace-context accessors over the `trace` byte.
  static constexpr std::uint8_t kTraceSampled = 0x80;
  static constexpr std::uint8_t kTraceHopMask = 0x7f;
  bool trace_sampled() const { return (trace & kTraceSampled) != 0; }
  std::uint8_t trace_hop() const { return trace & kTraceHopMask; }
  /// Context for a freshly sampled origin broadcast: sampled, hop 0.
  static constexpr std::uint8_t trace_origin_context() {
    return kTraceSampled;
  }
  /// Context for relaying `t` one hop further (saturating hop count).
  static constexpr std::uint8_t trace_relay_context(std::uint8_t t) {
    const std::uint8_t hop = t & kTraceHopMask;
    return static_cast<std::uint8_t>(
        (t & kTraceSampled) | (hop == kTraceHopMask ? hop : hop + 1));
  }

  static Message bcast(Round r, NodeId origin, Payload p);
  /// Size-only broadcast: carries no bytes but is charged for them.
  static Message bcast_sized(Round r, NodeId origin, std::uint64_t bytes);
  /// Fast-path broadcast over G_U (dual-digraph mode); payload semantics
  /// identical to bcast, p may be null with bytes > 0 for size-only load.
  static Message ubcast(Round r, NodeId origin, Payload p,
                        std::uint64_t bytes);
  /// Fallback trigger for round r (dual-digraph mode). `attempt` rides in
  /// the detector field: 0 for the initial trigger, incremented on every
  /// watchdog re-fire so re-floods penetrate the receivers' per-round
  /// dedup (a lost transition must be recoverable).
  static Message fallback(Round r, NodeId initiator,
                          std::uint32_t attempt = 0);
  static Message fail(Round r, NodeId suspected, NodeId detector);
  static Message fwd(Round r, NodeId origin);
  static Message bwd(Round r, NodeId origin);
  static Message heartbeat(NodeId origin);
};

class Frame;
/// Shared handle to one encoded message: every successor a frame is queued
/// to holds a reference to the *same* bytes.
using FrameRef = std::shared_ptr<const Frame>;

/// One protocol message bound to its encode-once wire image.
///
/// AllConcur relays every message along the overlay, so the per-hop cost of
/// serialization is multiplied by the out-degree. A Frame serializes the
/// header block exactly once, at construction, and shares the payload bytes
/// with the Message — they are never copied, no matter how many peers the
/// frame is queued to. Transports scatter/gather straight from the two
/// blocks (header(), wire_payload()) with vectored writes; in-process
/// harnesses read the decoded form through msg().
class Frame {
  struct MakeTag {};  // gates construction to make() while allowing
                      // make_shared's single allocation

 public:
  explicit Frame(MakeTag) {}

  /// Builds the frame for `m`, serializing the header. O(kHeaderBytes):
  /// the payload is shared, not copied; one heap allocation total.
  static FrameRef make(Message m);

  const Message& msg() const { return msg_; }
  std::span<const std::uint8_t> header() const {
    return {header_.data(), header_.size()};
  }
  /// Payload block as it goes on the wire. Size-only messages (payload
  /// null, payload_bytes > 0) materialize their zero bytes lazily here, so
  /// simulation-only traffic never pays for them. Null iff the message
  /// carries no payload bytes. Not thread-safe: frames are built and
  /// flushed on one node's event loop.
  const Payload& wire_payload() const;
  std::size_t payload_size() const { return msg_.payload_bytes; }
  std::size_t wire_size() const { return msg_.wire_size(); }

  /// Contiguous copy of the whole frame (tests and non-vectored callers).
  std::vector<std::uint8_t> to_bytes() const;

  /// Chaos-injection helper: a deep copy of `f` with the wire byte at
  /// `index % wire_size()` flipped. The checksum is NOT recomputed — the
  /// receiving parser must detect the damage and drop the frame.
  static FrameRef corrupt_copy(const Frame& f, std::uint64_t index);

 private:
  Message msg_;
  std::array<std::uint8_t, Message::kHeaderBytes> header_{};
  mutable Payload wire_payload_;  // lazily materialized for size-only
};

/// Serializes for the TCP transport. Size-only payloads are materialized
/// as zero bytes of the declared length.
std::vector<std::uint8_t> encode(const Message& m);

/// Parses one message; nullopt on malformed/truncated input or a checksum
/// mismatch. The payload (if any) is copied out of `bytes` into a fresh
/// shared buffer — the one copy a reused receive buffer forces; everything
/// downstream shares it.
std::optional<Message> decode(std::span<const std::uint8_t> bytes);

/// Borrow-decode: parses the frame's header block and *shares* its payload
/// with the returned Message — zero byte copies. Frames are built
/// in-process, so this trusted path skips checksum verification.
std::optional<Message> decode(const Frame& frame);

/// Frame length for a buffer starting with a header (nullopt if the header
/// is incomplete).
std::optional<std::size_t> frame_size(std::span<const std::uint8_t> bytes);

/// Cap on the payload length the *stream* parser accepts. A corrupted
/// 32-bit length field can otherwise declare gigabytes and stall the
/// connection waiting for bytes that will never come; anything above this
/// is treated as a torn header (resync), not a frame to wait for.
inline constexpr std::uint64_t kMaxStreamPayloadBytes = 64ull << 20;

/// Receive-side counters of the stream parser — the detection half of the
/// fault-injection story (chaos counts what it injects; these count what
/// the wire caught).
struct StreamStats {
  std::uint64_t frames = 0;         ///< verified frames handed to the sink
  std::uint64_t corrupt_drops = 0;  ///< torn frames: bad magic/type/length/checksum
  std::uint64_t resyncs = 0;        ///< forward scans to the next plausible header
};

/// Incremental parse of a length-prefixed byte stream with checksum
/// verification and torn-frame resync: verified frames are handed to
/// `sink` in order. A torn header (bad magic/type/length or header
/// checksum) triggers a forward scan for the next checksum-verified
/// header; a corrupted payload is skipped by its (header-sealed) declared
/// length. Either way the connection survives instead of desyncing or
/// aborting. Returns the new consume offset; bytes past it form an
/// incomplete (but plausible) tail the caller must retain for the next
/// read.
std::size_t parse_stream(std::span<const std::uint8_t> buf, std::size_t start,
                         StreamStats& stats,
                         const std::function<void(const Message&)>& sink);

}  // namespace allconcur::core
