// Wire messages of the AllConcur protocol (§3).
//
// The algorithm distinguishes ⟨BCAST, m_j⟩ and ⟨FAIL, p_j, p_k⟩; iterating
// rounds tags every message with its round R so that (R, p_j) identifies a
// broadcast and (R, p_j, p_k) a failure notification. The ⋄P extension
// (§3.3.2) adds ⟨FWD, p_i⟩ / ⟨BWD, p_i⟩, and the failure detector uses
// heartbeats.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "core/types.hpp"

namespace allconcur::core {

enum class MsgType : std::uint8_t {
  kBroadcast = 1,  ///< ⟨BCAST, m⟩: A-broadcast message, relayed along G
  kFail = 2,       ///< ⟨FAIL, p_j, p_k⟩: p_k suspects its predecessor p_j
  kFwd = 3,        ///< ⟨FWD, p_i⟩: ⋄P surviving-partition probe along G
  kBwd = 4,        ///< ⟨BWD, p_i⟩: same along the transpose of G
  kHeartbeat = 5,  ///< FD heartbeat (not round-scoped)
};

struct Message {
  MsgType type{MsgType::kHeartbeat};
  Round round = 0;
  /// BCAST: sender(m); FAIL: the suspected server p_j; FWD/BWD: the server
  /// that decided its message set; HB: the heartbeating server.
  NodeId origin = kInvalidNode;
  /// FAIL only: the detecting successor p_k.
  NodeId detector = kInvalidNode;
  /// BCAST only; may be null together with payload_bytes > 0 for
  /// "size-only" payloads used by throughput benches.
  Payload payload;
  std::uint64_t payload_bytes = 0;

  /// Serialized header size (see message.cpp for the layout).
  static constexpr std::size_t kHeaderBytes = 24;
  /// Wire limit: the payload length field is 32 bits. encode() asserts
  /// this rather than silently truncating the frame length.
  static constexpr std::uint64_t kMaxPayloadBytes = 0xffffffffull;
  std::size_t wire_size() const { return kHeaderBytes + payload_bytes; }

  static Message bcast(Round r, NodeId origin, Payload p);
  /// Size-only broadcast: carries no bytes but is charged for them.
  static Message bcast_sized(Round r, NodeId origin, std::uint64_t bytes);
  static Message fail(Round r, NodeId suspected, NodeId detector);
  static Message fwd(Round r, NodeId origin);
  static Message bwd(Round r, NodeId origin);
  static Message heartbeat(NodeId origin);
};

/// Serializes for the TCP transport. Size-only payloads are materialized
/// as zero bytes of the declared length.
std::vector<std::uint8_t> encode(const Message& m);

/// Parses one message; nullopt on malformed/truncated input.
std::optional<Message> decode(std::span<const std::uint8_t> bytes);

/// Frame length for a buffer starting with a header (nullopt if the header
/// is incomplete).
std::optional<std::size_t> frame_size(std::span<const std::uint8_t> bytes);

}  // namespace allconcur::core
