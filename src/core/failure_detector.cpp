#include "core/failure_detector.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace allconcur::core {

HeartbeatFd::HeartbeatFd(NodeId self, Params params, Hooks hooks)
    : self_(self),
      params_(params),
      hooks_(std::move(hooks)),
      timeout_(params.timeout) {
  ALLCONCUR_ASSERT(params_.period > 0, "heartbeat period must be positive");
  ALLCONCUR_ASSERT(params_.timeout >= params_.period,
                   "timeout below the heartbeat period always fires");
  ALLCONCUR_ASSERT(hooks_.send && hooks_.suspect, "FD hooks required");
}

void HeartbeatFd::set_peers(std::vector<NodeId> successors,
                            std::vector<NodeId> predecessors, TimeNs now) {
  successors_ = std::move(successors);
  std::unordered_map<NodeId, TimeNs> fresh;
  std::unordered_map<NodeId, bool> fresh_suspected;
  for (NodeId p : predecessors) {
    // Carry state for peers we already monitor; new peers get a full
    // timeout of grace starting now.
    const auto it = last_heard_.find(p);
    fresh[p] = it == last_heard_.end() ? now : it->second;
    const auto st = suspected_.find(p);
    fresh_suspected[p] = st != suspected_.end() && st->second;
  }
  last_heard_ = std::move(fresh);
  suspected_ = std::move(fresh_suspected);
}

void HeartbeatFd::on_heartbeat(NodeId from, TimeNs now) {
  const auto it = last_heard_.find(from);
  if (it == last_heard_.end()) return;  // not a predecessor
  it->second = now;
  if (suspected_[from]) {
    // Evidence of a false suspicion: with the adaptive (⋄P) policy the
    // peer is rehabilitated and the timeout backs off so that, eventually,
    // no live server is suspected (§3.3.2).
    if (params_.adaptive) {
      suspected_[from] = false;
      timeout_ = std::min<DurationNs>(timeout_ * 2, params_.max_timeout);
    }
  }
}

void HeartbeatFd::tick(TimeNs now) {
  if (last_sent_ < 0 || now - last_sent_ >= params_.period) {
    last_sent_ = now;
    if (!successors_.empty()) {
      const FrameRef beat = Frame::make(Message::heartbeat(self_));
      for (NodeId s : successors_) hooks_.send(s, beat);
    }
  }
  // Collect verdicts first: the suspect callback can complete a round and
  // reconfigure this detector (set_peers), invalidating the iteration.
  std::vector<NodeId> newly_suspected;
  for (auto& [peer, heard] : last_heard_) {
    if (!suspected_[peer] && now - heard >= timeout_) {
      suspected_[peer] = true;
      newly_suspected.push_back(peer);
    }
  }
  for (NodeId peer : newly_suspected) hooks_.suspect(peer);
}

bool HeartbeatFd::is_suspected(NodeId peer) const {
  const auto it = suspected_.find(peer);
  return it != suspected_.end() && it->second;
}

double fd_accuracy_lower_bound(
    std::size_t n, std::size_t d, double hb_period, double timeout,
    const std::function<double(double)>& delay_tail) {
  ALLCONCUR_ASSERT(hb_period > 0 && timeout >= hb_period,
                   "need timeout >= heartbeat period > 0");
  const std::size_t beats = static_cast<std::size_t>(timeout / hb_period);
  double miss_all = 1.0;
  for (std::size_t k = 1; k <= beats; ++k) {
    miss_all *= delay_tail(timeout - static_cast<double>(k) * hb_period);
  }
  const double per_link = 1.0 - miss_all;
  return std::pow(per_link, static_cast<double>(n) * static_cast<double>(d));
}

std::function<double(double)> exponential_delay_tail(double mean) {
  ALLCONCUR_ASSERT(mean > 0, "delay mean must be positive");
  return [mean](double t) { return t <= 0 ? 1.0 : std::exp(-t / mean); };
}

}  // namespace allconcur::core
