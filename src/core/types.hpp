// Core protocol type aliases.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace allconcur::core {

/// Immutable message payload, shared across all in-process receivers
/// (zero-copy: the simulator charges for the bytes, nobody copies them).
using Payload = std::shared_ptr<const std::vector<std::uint8_t>>;

inline Payload make_payload(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

inline std::size_t payload_size(const Payload& p) {
  return p ? p->size() : 0;
}

}  // namespace allconcur::core
