#include "core/reconfig.hpp"

#include "common/assert.hpp"

namespace allconcur::core {

ReconfigDecision evaluate_reconfig(const ReconfigPolicy& policy,
                                   std::size_t current_n,
                                   std::size_t current_degree) {
  ALLCONCUR_ASSERT(current_n >= 1, "empty deployment");
  ReconfigDecision out;
  const std::size_t k = std::min(current_degree, current_n - 1);
  out.current_nines = current_n == 1
                          ? 20.0
                          : graph::system_reliability_nines(
                                current_n, std::max<std::size_t>(k, 1),
                                policy.failure_model);
  out.meets_target = out.current_nines >= policy.target_nines;
  if (current_n >= 6) {
    out.required_degree = graph::min_gs_degree_for_target(
        current_n, policy.target_nines, policy.failure_model);
  } else if (current_n >= 2) {
    // Below the GS limit the overlay is complete: k = n-1 is the best
    // achievable; report it if it meets the target.
    if (graph::system_reliability_nines(current_n, current_n - 1,
                                        policy.failure_model) >=
        policy.target_nines) {
      out.required_degree = current_n - 1;
    }
  }
  if (policy.target_size > current_n) {
    out.replacements_needed = policy.target_size - current_n;
  }
  return out;
}

}  // namespace allconcur::core
