#include "core/tracking.hpp"

#include <algorithm>
#include <deque>

#include "common/assert.hpp"

namespace allconcur::core {

void TrackingDigraph::reset(NodeId root_rank) {
  root_ = root_rank;
  // clear() + push_back rather than assignment: the engine pools tracking
  // digraphs across rounds, so reset must keep the allocated capacity.
  vertices_.clear();
  vertices_.push_back(root_rank);
  edges_.clear();
}

void TrackingDigraph::reset_empty() {
  root_ = kInvalidNode;
  vertices_.clear();
  edges_.clear();
}

bool TrackingDigraph::contains(NodeId rank) const {
  return std::binary_search(vertices_.begin(), vertices_.end(), rank);
}

bool TrackingDigraph::has_edge(NodeId from, NodeId to) const {
  return std::binary_search(edges_.begin(), edges_.end(),
                            std::make_pair(from, to));
}

void TrackingDigraph::clear() {
  vertices_.clear();
  edges_.clear();
}

void TrackingDigraph::add_vertex(NodeId rank) {
  const auto it = std::lower_bound(vertices_.begin(), vertices_.end(), rank);
  if (it == vertices_.end() || *it != rank) vertices_.insert(it, rank);
}

void TrackingDigraph::add_edge(NodeId from, NodeId to) {
  const auto e = std::make_pair(from, to);
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), e);
  if (it == edges_.end() || *it != e) edges_.insert(it, e);
}

void TrackingDigraph::remove_edge(NodeId from, NodeId to) {
  const auto e = std::make_pair(from, to);
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), e);
  if (it != edges_.end() && *it == e) edges_.erase(it);
}

bool TrackingDigraph::successors_empty(NodeId rank) const {
  // Edges are sorted by (from, to): any edge with .first == rank sits at
  // the lower bound of (rank, 0).
  const auto it = std::lower_bound(edges_.begin(), edges_.end(),
                                   std::make_pair(rank, NodeId{0}));
  return it == edges_.end() || it->first != rank;
}

bool TrackingDigraph::on_failure(NodeId rank_j, NodeId rank_k,
                                 const graph::Digraph& overlay,
                                 const FailureKnowledge& fk) {
  if (empty()) return false;
  if (!contains(rank_j)) return false;  // line 25

  if (successors_empty(rank_j)) {
    // First notification of p_j's failure processed in this digraph
    // (lines 26-34): p_j may have sent m* to its successors before
    // failing — track them, chasing through already-failed servers.
    std::deque<std::pair<NodeId, NodeId>> queue;  // FIFO queue Q
    for (NodeId s : overlay.successors(rank_j)) {
      // Exclude p_k (line 27) and any successor whose ⟨FAIL, p_j, s⟩ we
      // already hold — s reported before relaying, so it cannot have m*
      // from p_j (the paper applies this filter in the chained case,
      // line 33; applying it here too is strictly more precise).
      if (s != rank_k && !fk.has_pair(rank_j, s)) {
        queue.emplace_back(rank_j, s);
      }
    }
    while (!queue.empty()) {
      const auto [pp, p] = queue.front();
      queue.pop_front();
      if (!contains(p)) {
        add_vertex(p);
        if (fk.is_failed(p)) {
          // p already failed but may have relayed m* further (line 32):
          // enqueue its successors, except those whose failure
          // notification for p we already hold.
          for (NodeId ps : overlay.successors(p)) {
            if (!fk.has_pair(p, ps)) queue.emplace_back(p, ps);
          }
        }
      }
      add_edge(pp, p);  // line 34
    }
  } else if (has_edge(rank_j, rank_k)) {
    // Subsequent notification: p_k reported before relaying m*, so it
    // cannot have received m* from p_j (lines 35-36).
    remove_edge(rank_j, rank_k);
  }

  return prune(fk);
}

bool TrackingDigraph::prune(const FailureKnowledge& fk) {
  if (vertices_.empty()) return false;

  // Line 37: drop vertices with no path from the root.
  std::vector<NodeId> reachable{root_};
  std::deque<NodeId> frontier{root_};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const auto& [from, to] : edges_) {
      if (from != u) continue;
      if (!std::binary_search(reachable.begin(), reachable.end(), to)) {
        reachable.insert(
            std::lower_bound(reachable.begin(), reachable.end(), to), to);
        frontier.push_back(to);
      }
    }
  }
  if (reachable.size() != vertices_.size()) {
    vertices_ = reachable;
    std::erase_if(edges_, [&](const auto& e) {
      return !std::binary_search(vertices_.begin(), vertices_.end(),
                                 e.first) ||
             !std::binary_search(vertices_.begin(), vertices_.end(), e.second);
    });
  }

  // Line 39: if every remaining vertex is known to have failed, no
  // non-faulty server has m* — stop tracking it.
  const bool all_failed = std::all_of(
      vertices_.begin(), vertices_.end(),
      [&](NodeId v) { return fk.is_failed(v); });
  if (all_failed) {
    clear();
    return true;
  }
  return false;
}

}  // namespace allconcur::core
