#include "baseline/allgather.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "common/assert.hpp"
#include "common/math.hpp"
#include "core/message.hpp"

namespace allconcur::baseline {
namespace {

constexpr std::size_t kHeaderBytes = core::Message::kHeaderBytes;  // same framing as the protocol

struct Block {
  std::size_t round;
  NodeId origin;
  // Recursive doubling aggregates several origins into one message; the
  // byte charge is origins.size() * block_bytes.
  std::vector<NodeId> origins;
};

// Shared harness state for one allgather run.
class Run {
 public:
  Run(const AllgatherParams& p, const sim::FabricParams& fabric)
      : params_(p), model_(fabric, p.n) {}

  AllgatherResult execute() {
    have_.assign(params_.n, {});
    node_round_.assign(params_.n, 0);
    finish_last_ = 0;
    for (NodeId i = 0; i < params_.n; ++i) start_round(i, 0);
    sim_.run_to_completion();
    AllgatherResult result;
    result.total_time = finish_last_;
    result.avg_round_ns =
        static_cast<double>(finish_last_) / static_cast<double>(params_.rounds);
    const double bits =
        8.0 * static_cast<double>(params_.n) *
        static_cast<double>(params_.block_bytes);
    result.agreement_gbps = bits / result.avg_round_ns;  // Gbit/s (ns base)
    return result;
  }

 private:
  void send(NodeId src, NodeId dst, Block b, std::size_t bytes) {
    const TimeNs done = model_.sender_done(src, dst, bytes, sim_.now());
    sim_.schedule_at(model_.arrival(done), [this, dst, b, bytes] {
      const TimeNs handed = model_.receiver_done(dst, bytes, sim_.now());
      sim_.schedule_at(handed, [this, dst, b] { receive(dst, b); });
    });
  }

  void start_round(NodeId i, std::size_t round) {
    node_round_[i] = round;
    have_[i].clear();
    Block own{round, i, {i}};
    receive(i, own);  // a node trivially "has" its own block
  }

  void receive(NodeId i, const Block& b) {
    if (b.round > node_round_[i]) {
      pending_[i].push_back(b);  // neighbour runs one round ahead
      return;
    }
    if (b.round < node_round_[i]) return;  // stale duplicate (rec-doubling)
    bool fresh = false;
    for (NodeId o : b.origins) {
      if (!have_[i].count(o)) {
        have_[i].insert(o);
        fresh = true;
      }
    }
    if (!fresh) return;
    forward(i, b);
    if (have_[i].size() == params_.n) round_done(i);
  }

  void forward(NodeId i, const Block& b) {
    if (params_.algo == AllgatherAlgo::kRing) {
      // Pipelined ring: pass each single-origin block to the successor
      // until it would return home.
      const NodeId next = static_cast<NodeId>((i + 1) % params_.n);
      if (next != b.origins.front()) {
        send(i, next, b, kHeaderBytes + params_.block_bytes);
      }
    } else {
      // Recursive doubling (Bruck-style for any n): at step k, node i
      // exchanges everything gathered so far with i ± 2^k. We emulate it
      // by sending the accumulated set whenever it doubles.
      const std::size_t count = have_[i].size();
      if ((count & (count - 1)) == 0 || count == params_.n) {
        const std::size_t step = step_of(count);
        const NodeId peer = static_cast<NodeId>(
            (i + (std::size_t{1} << step)) % params_.n);
        Block agg{node_round_[i], i, {have_[i].begin(), have_[i].end()}};
        send(i, peer, agg,
             kHeaderBytes + params_.block_bytes * agg.origins.size());
      }
    }
  }

  static std::size_t step_of(std::size_t count) {
    return count <= 1 ? 0 : floor_log2(count);
  }

  void round_done(NodeId i) {
    finish_last_ = std::max(finish_last_, sim_.now());
    const std::size_t next_round = node_round_[i] + 1;
    if (next_round >= params_.rounds) return;
    start_round(i, next_round);
    // Replay blocks that arrived early for this round.
    auto it = pending_.find(i);
    if (it != pending_.end()) {
      auto blocks = std::move(it->second);
      pending_.erase(it);
      for (const Block& b : blocks) receive(i, b);
    }
  }

  AllgatherParams params_;
  sim::Simulator sim_;
  sim::NetworkModel model_;
  std::vector<std::set<NodeId>> have_;
  std::vector<std::size_t> node_round_;
  std::map<NodeId, std::vector<Block>> pending_;
  TimeNs finish_last_ = 0;
};

}  // namespace

AllgatherResult run_allgather(const AllgatherParams& params,
                              const sim::FabricParams& fabric) {
  ALLCONCUR_ASSERT(params.n >= 2, "allgather needs at least 2 nodes");
  Run run(params, fabric);
  return run.execute();
}

}  // namespace allconcur::baseline
