// Unreliable agreement baseline (§5, Fig. 10a): MPI_Allgather-style
// dissemination over the same simulated fabric AllConcur runs on.
//
// Open MPI's allgather over TCP uses a pipelined ring for large payloads
// (each node forwards one block per step to its ring successor) and a
// Bruck/recursive-doubling exchange for small ones; both are implemented
// here. Neither tolerates failures — that is the point of the comparison:
// the gap between Fig. 10a and Fig. 10b is AllConcur's cost of fault
// tolerance (the paper measures an average overhead of 58%).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "sim/network_model.hpp"
#include "sim/simulator.hpp"

namespace allconcur::baseline {

enum class AllgatherAlgo { kRing, kRecursiveDoubling };

struct AllgatherParams {
  std::size_t n = 8;
  std::size_t block_bytes = 1024;  ///< per-node contribution per round
  std::size_t rounds = 5;          ///< back-to-back rounds (steady state)
  AllgatherAlgo algo = AllgatherAlgo::kRing;
};

struct AllgatherResult {
  TimeNs total_time = 0;          ///< until the last node finished round R
  double avg_round_ns = 0.0;      ///< total / rounds
  double agreement_gbps = 0.0;    ///< n*block_bytes per round, in Gbit/s
};

/// Runs `rounds` consecutive allgathers; every node starts round r+1 as
/// soon as it completed round r (nodes may skew by up to one round, as in
/// a real pipelined collective).
AllgatherResult run_allgather(const AllgatherParams& params,
                              const sim::FabricParams& fabric);

}  // namespace allconcur::baseline
