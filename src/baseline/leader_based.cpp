#include "baseline/leader_based.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <vector>

#include "common/assert.hpp"
#include "core/message.hpp"

namespace allconcur::baseline {
namespace {

constexpr std::size_t kHeaderBytes = core::Message::kHeaderBytes;
constexpr std::size_t kAckBytes = kHeaderBytes;  // acks carry no payload

// Node layout: servers 0..n-1; replicas n..n+g-1 (leader = n).
class Run {
 public:
  Run(const LeaderBasedParams& p, const sim::FabricParams& fabric)
      : params_(p), model_(fabric, p.n + p.group_size) {}

  LeaderBasedResult execute() {
    learned_.assign(params_.n, {});
    server_round_.assign(params_.n, 0);
    acks_.clear();
    for (NodeId s = 0; s < params_.n; ++s) submit_batch(s, 0);
    sim_.run_to_completion();
    LeaderBasedResult result;
    result.total_time = finish_last_;
    result.avg_round_ns =
        static_cast<double>(finish_last_) / static_cast<double>(params_.rounds);
    result.agreement_gbps = 8.0 * static_cast<double>(params_.n) *
                            static_cast<double>(params_.batch_bytes) /
                            result.avg_round_ns;
    result.leader_messages = leader_msgs_;
    result.server_messages = params_.rounds * (1 + params_.n);  // 1 out, n in
    return result;
  }

 private:
  NodeId leader() const { return static_cast<NodeId>(params_.n); }

  struct Decree {
    std::size_t round;
    NodeId server;
  };

  void send(NodeId src, NodeId dst, std::size_t bytes,
            std::function<void()> on_delivered) {
    const TimeNs done = model_.sender_done(src, dst, bytes, sim_.now());
    sim_.schedule_at(model_.arrival(done), [this, dst, bytes,
                                            fn = std::move(on_delivered)] {
      const TimeNs handed = model_.receiver_done(dst, bytes, sim_.now());
      sim_.schedule_at(handed, std::move(fn));
    });
  }

  void submit_batch(NodeId s, std::size_t round) {
    server_round_[s] = round;
    send(s, leader(), kHeaderBytes + params_.batch_bytes,
         [this, s, round] { on_leader_receive({round, s}); });
  }

  void on_leader_receive(Decree d) {
    ++leader_msgs_;
    // The consensus engine handles decrees serially, modeled as a busy
    // CPU resource with a fixed plus per-byte cost.
    const DurationNs cost =
        params_.decree_cpu_fixed +
        static_cast<DurationNs>(params_.decree_cpu_ns_per_byte *
                                static_cast<double>(params_.batch_bytes));
    const TimeNs start = std::max(sim_.now(), leader_cpu_free_);
    leader_cpu_free_ = start + cost;
    sim_.schedule_at(leader_cpu_free_, [this, d] { replicate(d); });
  }

  void replicate(Decree d) {
    // Phase-2 accept to the other replicas; each answers with an ack.
    const auto key = std::make_pair(d.round, d.server);
    acks_[key] = 0;
    for (std::size_t r = 1; r < params_.group_size; ++r) {
      const NodeId replica = static_cast<NodeId>(params_.n + r);
      ++leader_msgs_;
      send(leader(), replica, kHeaderBytes + params_.batch_bytes,
           [this, d, replica] {
             send(replica, leader(), kAckBytes, [this, d] { on_ack(d); });
           });
    }
  }

  void on_ack(Decree d) {
    ++leader_msgs_;
    const auto key = std::make_pair(d.round, d.server);
    const std::size_t majority_acks = params_.group_size / 2;  // + leader
    if (++acks_[key] != majority_acks) return;
    // Chosen: disseminate to all n servers (the learn phase).
    for (NodeId s = 0; s < params_.n; ++s) {
      ++leader_msgs_;
      send(leader(), s, kHeaderBytes + params_.batch_bytes,
           [this, s, d] { on_learn(s, d); });
    }
  }

  void on_learn(NodeId s, Decree d) {
    // Faster servers may already be a round ahead; their decrees arrive
    // before s advanced, so learns are counted per round.
    ++learned_[s][d.round];
    maybe_finish_round(s);
  }

  void maybe_finish_round(NodeId s) {
    const std::size_t r = server_round_[s];
    const auto it = learned_[s].find(r);
    if (it == learned_[s].end() || it->second != params_.n) return;
    finish_last_ = std::max(finish_last_, sim_.now());
    learned_[s].erase(it);
    const std::size_t next = r + 1;
    if (next < params_.rounds) {
      submit_batch(s, next);
      maybe_finish_round(s);  // a full next-round set may be buffered
    }
  }

  LeaderBasedParams params_;
  sim::Simulator sim_;
  sim::NetworkModel model_;
  std::vector<std::map<std::size_t, std::size_t>> learned_;
  std::vector<std::size_t> server_round_;
  std::map<std::pair<std::size_t, NodeId>, std::size_t> acks_;
  TimeNs leader_cpu_free_ = 0;
  TimeNs finish_last_ = 0;
  std::uint64_t leader_msgs_ = 0;
};

}  // namespace

LeaderBasedResult run_leader_based(const LeaderBasedParams& params,
                                   const sim::FabricParams& fabric) {
  ALLCONCUR_ASSERT(params.n >= 1, "need at least one server");
  ALLCONCUR_ASSERT(params.group_size >= 3 && params.group_size % 2 == 1,
                   "replication group must be odd and >= 3");
  Run run(params, fabric);
  return run.execute();
}

}  // namespace allconcur::baseline
