// Leader-based atomic broadcast baseline (§4.5, Fig. 10c) — the deployment
// the paper compares against with Libpaxos: n servers send their batches
// to the leader of a small replication group; the leader replicates each
// batch within the group (one Paxos decree, majority acknowledgement) and
// then disseminates it to all n servers.
//
// The structural costs are exactly §4.5's: the leader does O(n^2) work per
// round (receives n batches, sends each to n servers plus the replicas),
// while every other server does O(n). On top of the byte/overhead costs of
// the shared fabric model, the leader charges `decree_cpu` per decree —
// the serialization cost of a single-threaded consensus engine, calibrated
// so that absolute throughput lands in Libpaxos3's published range (see
// EXPERIMENTS.md).
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "sim/network_model.hpp"
#include "sim/simulator.hpp"

namespace allconcur::baseline {

struct LeaderBasedParams {
  std::size_t n = 8;              ///< agreeing servers (Paxos clients/learners)
  std::size_t group_size = 5;     ///< replicas including the leader (paper: 5)
  std::size_t batch_bytes = 1024; ///< per server per round
  std::size_t rounds = 5;
  /// Leader consensus-engine cost per decree: fixed dispatch plus value
  /// copying/checksumming, calibrated to Libpaxos3 (single-threaded,
  /// ~65 MB/s effective value processing).
  DurationNs decree_cpu_fixed = us(150);
  double decree_cpu_ns_per_byte = 15.0;
};

struct LeaderBasedResult {
  TimeNs total_time = 0;
  double avg_round_ns = 0.0;
  double agreement_gbps = 0.0;  ///< n*batch_bytes per round, Gbit/s
  std::uint64_t leader_messages = 0;  ///< O(n^2) evidence
  std::uint64_t server_messages = 0;  ///< per non-leader server
};

LeaderBasedResult run_leader_based(const LeaderBasedParams& params,
                                   const sim::FabricParams& fabric);

}  // namespace allconcur::baseline
